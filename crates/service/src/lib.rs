//! # oocq-service
//!
//! A concurrent containment/minimization service over the `oocq` engine:
//! the `oocq-serve` daemon, its line-delimited protocol, named schema
//! sessions, a worker pool that reuses the branch engine, and a shared
//! canonical-form decision cache ([`CanonicalDecisionCache`]) that
//! memoizes containment verdicts up to query isomorphism (Theorem 4.5
//! makes isomorphism the right equivalence to key on).
//!
//! Layering: this crate sits above `oocq-core` (which exposes the
//! [`oocq_core::DecisionCache`] hook the cache plugs into) and below the
//! root `oocq` crate (whose workbench delegates to [`run_program_with`]).
//!
//! Determinism contract: for a fixed request stream, the response stream
//! is byte-identical across worker-pool sizes and cache states (stats
//! suffixes excluded — they carry wall times). The corpus replay tests in
//! `tests/` pin this.

// `deny` rather than `forbid`: the reactor's readiness polling ([`poll`])
// carries the crate's single `#[allow(unsafe_code)]` island — FFI
// declarations for epoll (plus the one-line `flock` shim the persistent
// cache's directory lock rides on) against the C library `std` already
// links. Everything else stays checked.
#![deny(unsafe_code)]

mod cache;
mod engine;
mod flight;
mod persist;
pub mod poll;
mod protocol;
pub mod reactor;
mod runner;
mod server;

pub use cache::{
    CacheStats, CanonicalDecisionCache, PersistStats, DEFAULT_CAPACITY, DEFAULT_DISK_CAPACITY,
    SHARD_COUNT,
};
pub use engine::{ServiceEngine, Session, DEFAULT_MAX_CONNS};
pub use flight::{FlightKey, FlightStats, JoinOutcome, Singleflight};
pub use protocol::{escape, parse_request, render_response, unescape, Request, RequestStats};
pub use runner::{run_program_with, run_workbench_with, RunError};
pub use server::{accept_loop, daemon_main, serve};

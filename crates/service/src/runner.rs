//! Execution of workbench programs under an explicit [`EngineConfig`].
//!
//! [`run_program_with`] renders byte-identical transcripts to the original
//! serial workbench runner (the `tests/corpus` golden files are the
//! contract), while routing every engine decision through the configured
//! thread pool and decision cache. The root crate's
//! `oocq::run_program` delegates here with
//! [`EngineConfig::from_env`].

use oocq_core::{
    contains_terminal_with, expand, expand_satisfiable_with, satisfiability, CoreError, Engine,
    EngineConfig, PreparedQuery, PreparedSchema, Satisfiability,
};
use oocq_parser::{parse_program, Command, ParseError, Program};
use oocq_query::normalize;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors from running a workbench program.
#[derive(Debug)]
pub enum RunError {
    /// The program text failed to parse.
    Parse(ParseError),
    /// A command failed (e.g. minimizing a non-positive query).
    Core(CoreError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Parse(e) => write!(f, "parse error at {e}"),
            RunError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ParseError> for RunError {
    fn from(e: ParseError) -> Self {
        RunError::Parse(e)
    }
}

impl From<CoreError> for RunError {
    fn from(e: CoreError) -> Self {
        RunError::Core(e)
    }
}

/// Parse and run a program under a configuration, returning the rendered
/// transcript.
pub fn run_workbench_with(source: &str, cfg: &EngineConfig) -> Result<String, RunError> {
    let program = parse_program(source)?;
    run_program_with(&program, cfg).map_err(Into::into)
}

/// Run an already-parsed program under a configuration.
///
/// Output is independent of `cfg.threads` and of the cache state (the
/// corpus replay tests in this crate assert both).
pub fn run_program_with(program: &Program, cfg: &EngineConfig) -> Result<String, CoreError> {
    let s = &program.schema;
    let eng = Engine::new(cfg.clone());
    // Prepare the schema and every named query once; all commands over a
    // name then share its memoized analysis, classes, canonical form, and
    // branch indexes.
    let ps = PreparedSchema::new(s);
    let prepared: HashMap<&str, PreparedQuery> = program
        .queries
        .iter()
        .map(|(n, q)| (n.as_str(), PreparedQuery::new(&ps, q.clone())))
        .collect();
    let prep = |name: &str| prepared.get(name).expect("validated by the parser");
    let mut out = String::new();
    for cmd in &program.commands {
        match cmd {
            Command::Satisfiable(name) => {
                let q = prep(name).query();
                let _ = writeln!(out, "satisfiable {name}?");
                let u = expand(s, &normalize(q, s)?)?;
                for sub in &u {
                    match satisfiability(s, sub)? {
                        Satisfiability::Satisfiable => {
                            let _ = writeln!(out, "  SAT   {}", sub.display(s));
                        }
                        Satisfiability::Unsatisfiable(reason) => {
                            let _ = writeln!(out, "  UNSAT {} ({reason})", sub.display(s));
                        }
                    }
                }
            }
            Command::CheckContains(a, b) => {
                let holds = eng.dispatch(prep(a), prep(b))?;
                let _ = writeln!(
                    out,
                    "check {a} <= {b}: {}",
                    if holds { "holds" } else { "FAILS" }
                );
            }
            Command::CheckEquivalent(a, b) => {
                let (pa, pb) = (prep(a), prep(b));
                let holds = eng.dispatch(pa, pb)? && eng.dispatch(pb, pa)?;
                let _ = writeln!(
                    out,
                    "check {a} == {b}: {}",
                    if holds { "holds" } else { "FAILS" }
                );
            }
            Command::Explain(a, b) => {
                let (pa, pb) = (prep(a), prep(b));
                let (qa, qb) = (pa.query(), pb.query());
                let _ = writeln!(out, "explain {a} <= {b}:");
                if qa.is_terminal(s) && qb.is_terminal(s) {
                    let proof = eng.decide(pa, pb)?;
                    for line in proof.render(s, qa, qb).lines() {
                        let _ = writeln!(out, "  {line}");
                    }
                } else {
                    let ua = expand_satisfiable_with(s, &normalize(qa, s)?, cfg)?;
                    let ub = expand_satisfiable_with(s, &normalize(qb, s)?, cfg)?;
                    if ua.is_empty() {
                        let _ = writeln!(
                            out,
                            "  holds vacuously: every branch of {a} is unsatisfiable"
                        );
                    }
                    for sub in &ua {
                        let mut covered = false;
                        for p in &ub {
                            if contains_terminal_with(s, sub, p, cfg)? {
                                covered = true;
                                break;
                            }
                        }
                        let _ = writeln!(
                            out,
                            "  {} {}",
                            if covered { "covered " } else { "UNCOVERED" },
                            sub.display(s)
                        );
                    }
                }
            }
            Command::Expand(name) => {
                let q = prep(name).query();
                let u = expand(s, &normalize(q, s)?)?;
                let _ = writeln!(out, "expand {name} ({} branches):", u.len());
                for sub in &u {
                    let _ = writeln!(out, "  {}", sub.display(s));
                }
            }
            Command::Minimize(name) => match eng.minimize(prep(name)) {
                Ok(m) => {
                    let _ = writeln!(out, "minimize {name}:");
                    if m.is_empty() {
                        let _ = writeln!(out, "  (unsatisfiable: empty union)");
                    }
                    for sub in &m {
                        let _ = writeln!(out, "  {}", sub.display(s));
                    }
                }
                Err(e) => {
                    let _ = writeln!(out, "minimize {name}: cannot minimize ({e})");
                }
            },
        }
        let _ = writeln!(out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcript_for_a_tiny_program() {
        let text = "schema { class C {} } query Q = { x | x in C } \
                    satisfiable Q check Q <= Q minimize Q";
        let out = run_workbench_with(text, &EngineConfig::serial()).unwrap();
        assert!(out.contains("SAT   { x | x in C }"));
        assert!(out.contains("check Q <= Q: holds"));
        assert!(out.contains("minimize Q:\n  { x | x in C }"));
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            run_workbench_with("query Q = { x | x in C }", &EngineConfig::serial()),
            Err(RunError::Parse(_))
        ));
    }
}

//! The canonical-form decision cache.
//!
//! [`CanonicalDecisionCache`] implements [`oocq_core::DecisionCache`] with
//! isomorphism-invariant keys:
//!
//! * **Schema fingerprint.** A schema is keyed by its full rendered
//!   description ([`Schema`]'s `Display`, the DSL text `oocq-parser`
//!   accepts) — deterministic because tuple types iterate in `BTreeMap`
//!   order, and collision-free because the whole description is the key,
//!   not a hash of it. Fingerprints are interned to `Arc<str>` so the many
//!   cache entries of one session share one allocation.
//! * **Containment entries** are keyed by
//!   `(fingerprint, canonical_form(Q₁), canonical_form(Q₂))` using
//!   [`oocq_query::canonical_form`]. Containment is invariant under
//!   variable renaming of either side, so a renamed copy of a previously
//!   decided pair hits — which is exactly what `nonredundant_union`'s
//!   O(n²) pairwise checks over expansion branches need.
//! * **Minimization entries** are keyed by
//!   `(fingerprint, rendered query)` — the *exact* query, because
//!   minimization output carries variable names back to the user and must
//!   stay bit-identical to an uncached run (see the
//!   [`DecisionCache`] soundness contract).
//!
//! Storage is a sharded `RwLock` LRU: keys hash to one of [`SHARD_COUNT`]
//! shards, reads take the shard's read lock and refresh the entry's access
//! stamp with a relaxed atomic store, writes take the write lock and evict
//! the least-recently-stamped entry once the shard exceeds its capacity
//! share. A global relaxed counter supplies the stamps.
//!
//! ## The persistent second tier
//!
//! With [`CanonicalDecisionCache::with_persistence`] (or `OOCQ_CACHE_DIR`
//! through [`CanonicalDecisionCache::from_env`]) the cache keeps a
//! disk-backed second tier behind the LRU: every containment verdict —
//! negative ones included, they cost exactly as much to recompute — is
//! appended to the [`crate::persist`] log, and on startup the surviving
//! records pre-warm both the tier-2 index and the in-memory shards, so a
//! restarted daemon serves its old hot set warm. A tier-1 miss consults
//! the tier-2 index before reporting a miss; a tier-2 hit promotes the
//! entry back into the LRU and **counts as a cache hit**, so singleflight
//! followers see it exactly like a memory hit (never a leader
//! computation). Invalidation is wholesale by key identity: records carry
//! [`ENGINE_CACHE_VERSION`] and the schema/theory fingerprints, so an
//! engine bump or a constraint edit makes every old record unreachable
//! (and `stale`-counted, then compacted away). Minimization results are
//! *not* persisted: their values embed user-facing variable names and are
//! exact-keyed, so their replay value across restarts is near zero.
//!
//! Only one process may own a cache directory at a time; a second opener
//! loses the [`crate::persist::acquire_dir_lock`] race and silently runs
//! memory-only ([`CanonicalDecisionCache::persistence_active`] reports
//! which side of that race a cache landed on).

use crate::persist;
use oocq_core::{DecisionCache, PreparedQuery};
use oocq_query::{canonical_form, CanonicalQuery, Query, UnionQuery};
use oocq_schema::Schema;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, RwLock};

/// Number of independent lock shards per table. Sixteen keeps write
/// contention negligible for worker pools an order of magnitude larger
/// while the per-shard eviction scans stay short.
pub const SHARD_COUNT: usize = 16;

/// Default total capacity (entries per table) when `OOCQ_CACHE_CAPACITY`
/// is unset.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Default bound on the persistent tier's index (distinct keys on disk)
/// when `OOCQ_CACHE_DISK_CAPACITY` is unset. Deliberately much larger
/// than the in-memory capacity: disk entries are a few hundred bytes and
/// exist precisely to outlive LRU eviction.
pub const DEFAULT_DISK_CAPACITY: usize = 65536;

/// Dead-record floor below which compaction is never triggered, so tiny
/// caches don't rewrite the log on every superseded verdict.
const COMPACT_MIN_DEAD: u64 = 8;

/// Engine/cache compatibility stamp baked into every cache key.
///
/// A cached verdict is only replayable by an engine that would have
/// computed the same value; bump this whenever a decision-engine change
/// alters what a stored entry means (new verdict semantics, key shape
/// changes, theory rewrites). Version 2 introduced theory-aware keys.
pub const ENGINE_CACHE_VERSION: u32 = 2;

#[derive(Clone, PartialEq, Eq, Hash)]
struct ContainsKey {
    version: u32,
    schema: Arc<str>,
    /// The schema's theory fingerprint (its rendered constraint block).
    /// Redundant with the trailing lines of `schema` today, but keyed
    /// separately so constrained and unconstrained verdicts can never
    /// collide even if fingerprint rendering changes.
    theory: Arc<str>,
    q1: CanonicalQuery,
    q2: CanonicalQuery,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct MinimizeKey {
    version: u32,
    schema: Arc<str>,
    /// See [`ContainsKey::theory`].
    theory: Arc<str>,
    query: String,
}

struct Entry<V> {
    value: V,
    /// Last-access stamp from the cache's global clock; relaxed ordering is
    /// enough because stamps only steer eviction, never correctness.
    stamp: AtomicU64,
}

/// One sharded LRU table.
struct Lru<K, V> {
    shards: Vec<RwLock<HashMap<K, Entry<V>>>>,
    per_shard_cap: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> Lru<K, V> {
    fn new(capacity: usize) -> Lru<K, V> {
        Lru {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            per_shard_cap: capacity.div_ceil(SHARD_COUNT).max(1),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, Entry<V>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARD_COUNT]
    }

    fn get(&self, key: &K, clock: &AtomicU64) -> Option<V> {
        let shard = self.shard(key).read().unwrap();
        shard.get(key).map(|e| {
            e.stamp.store(clock.fetch_add(1, Relaxed) + 1, Relaxed);
            e.value.clone()
        })
    }

    /// Insert, evicting the shard's least-recently-used entry on overflow.
    /// Returns whether an eviction happened.
    fn put(&self, key: K, value: V, clock: &AtomicU64) -> bool {
        let mut shard = self.shard(&key).write().unwrap();
        let stamp = AtomicU64::new(clock.fetch_add(1, Relaxed) + 1);
        shard.insert(key, Entry { value, stamp });
        if shard.len() > self.per_shard_cap {
            let victim = shard
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Relaxed))
                .map(|(k, _)| k.clone());
            if let Some(k) = victim {
                shard.remove(&k);
                return true;
            }
        }
        false
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }
}

/// A point-in-time snapshot of cache traffic (see
/// [`CanonicalDecisionCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Containment lookups answered from cache.
    pub contains_hits: u64,
    /// Containment lookups that missed.
    pub contains_misses: u64,
    /// Minimization lookups answered from cache.
    pub minimize_hits: u64,
    /// Minimization lookups that missed.
    pub minimize_misses: u64,
    /// Entries evicted by the LRU policy (both tables).
    pub evictions: u64,
}

/// A point-in-time snapshot of the persistent tier's counters (see
/// [`CanonicalDecisionCache::persist_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Containment lookups answered from the on-disk index after a tier-1
    /// miss (each also counts as a `contains_hits` cache hit).
    pub tier2_hits: u64,
    /// Records accepted into the index at startup (pre-warmed verdicts).
    pub loaded: u64,
    /// Records appended to the log since startup.
    pub appended: u64,
    /// Startup records skipped for carrying a different
    /// [`ENGINE_CACHE_VERSION`].
    pub stale: u64,
    /// Corrupt spans skipped by log recovery plus records whose canonical
    /// payload no longer decodes.
    pub corrupt: u64,
    /// Live records overwritten by a later verdict for the same key.
    pub superseded: u64,
    /// Writes refused because the index reached its disk capacity.
    pub rejected: u64,
    /// Times the log was rewritten from the live index.
    pub compactions: u64,
    /// Distinct keys currently in the on-disk index.
    pub entries: usize,
}

/// One interned fingerprint plus its recency stamp: the interner evicts
/// its least-recently-touched entry on overflow, never the whole table.
struct InternEntry {
    key: Arc<str>,
    stamp: AtomicU64,
}

/// Mutable half of the persistent tier, under one mutex: the verdict
/// index (what's on disk, last record wins) and the append handle.
struct Tier2State {
    index: HashMap<ContainsKey, bool>,
    writer: persist::LogWriter,
    /// Log records no longer reachable through `index` (superseded,
    /// stale-versioned, or corrupt). Drives compaction.
    dead: u64,
}

/// The disk-backed second tier. Held by the cache only when a directory
/// was configured *and* its single-writer lock was won.
struct Tier2 {
    state: Mutex<Tier2State>,
    /// Bound on distinct on-disk keys; appends beyond it are rejected
    /// (the in-memory tier still serves them for this process's life).
    cap: usize,
    tier2_hits: AtomicU64,
    loaded: AtomicU64,
    appended: AtomicU64,
    stale: AtomicU64,
    corrupt: AtomicU64,
    superseded: AtomicU64,
    rejected: AtomicU64,
    compactions: AtomicU64,
    /// Held for the cache's lifetime; releasing it is what lets the next
    /// process adopt the directory.
    _lock: persist::DirLock,
}

fn record_of(key: &ContainsKey, holds: bool) -> persist::Record {
    persist::Record {
        version: ENGINE_CACHE_VERSION,
        schema: key.schema.to_string(),
        theory: key.theory.to_string(),
        q1: key.q1.to_wire(),
        q2: key.q2.to_wire(),
        holds,
    }
}

impl Tier2 {
    fn lookup(&self, key: &ContainsKey) -> Option<bool> {
        let hit = self.state.lock().unwrap().index.get(key).copied();
        if hit.is_some() {
            self.tier2_hits.fetch_add(1, Relaxed);
        }
        hit
    }

    /// Persist one verdict. Appends are best-effort: an I/O failure costs
    /// one warm verdict after the next restart, never a wrong answer.
    fn record(&self, key: &ContainsKey, holds: bool) {
        let mut st = self.state.lock().unwrap();
        match st.index.get(key) {
            // Already on disk with the same value: nothing to write.
            Some(&v) if v == holds => return,
            Some(_) => {
                self.superseded.fetch_add(1, Relaxed);
                st.dead += 1;
            }
            None => {
                if st.index.len() >= self.cap {
                    self.rejected.fetch_add(1, Relaxed);
                    return;
                }
            }
        }
        let _ = st.writer.append(&record_of(key, holds));
        self.appended.fetch_add(1, Relaxed);
        st.index.insert(key.clone(), holds);
        if st.dead > (st.index.len() as u64).max(COMPACT_MIN_DEAD) {
            self.compact(&mut st);
        }
    }

    /// Rewrite the log to exactly the live index and reset the dead count.
    fn compact(&self, st: &mut Tier2State) {
        let records: Vec<persist::Record> =
            st.index.iter().map(|(k, &v)| record_of(k, v)).collect();
        if st.writer.rewrite(records.into_iter()).is_ok() {
            st.dead = 0;
            self.compactions.fetch_add(1, Relaxed);
        }
    }

    fn stats(&self) -> PersistStats {
        let entries = self.state.lock().unwrap().index.len();
        PersistStats {
            tier2_hits: self.tier2_hits.load(Relaxed),
            loaded: self.loaded.load(Relaxed),
            appended: self.appended.load(Relaxed),
            stale: self.stale.load(Relaxed),
            corrupt: self.corrupt.load(Relaxed),
            superseded: self.superseded.load(Relaxed),
            rejected: self.rejected.load(Relaxed),
            compactions: self.compactions.load(Relaxed),
            entries,
        }
    }
}

/// The shared, thread-safe decision cache of `oocq-serve`. See the module
/// docs for the keying scheme.
pub struct CanonicalDecisionCache {
    contains: Lru<ContainsKey, bool>,
    minimized: Lru<MinimizeKey, UnionQuery>,
    /// Interned schema fingerprints, keyed by the rendered description.
    schema_keys: RwLock<HashMap<String, InternEntry>>,
    /// Bound on the interner, so a long-lived daemon seeing an unbounded
    /// stream of distinct schemas cannot leak memory through it.
    intern_cap: usize,
    /// The disk-backed second tier, when configured and lock-winning.
    tier2: Option<Tier2>,
    clock: AtomicU64,
    contains_hits: AtomicU64,
    contains_misses: AtomicU64,
    minimize_hits: AtomicU64,
    minimize_misses: AtomicU64,
    evictions: AtomicU64,
}

impl CanonicalDecisionCache {
    /// A cache holding up to `capacity` entries in each of its two tables.
    pub fn new(capacity: usize) -> CanonicalDecisionCache {
        CanonicalDecisionCache {
            contains: Lru::new(capacity),
            minimized: Lru::new(capacity),
            schema_keys: RwLock::new(HashMap::new()),
            intern_cap: capacity.max(1),
            tier2: None,
            clock: AtomicU64::new(0),
            contains_hits: AtomicU64::new(0),
            contains_misses: AtomicU64::new(0),
            minimize_hits: AtomicU64::new(0),
            minimize_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache with a disk-backed second tier rooted at `dir` (created if
    /// absent), holding up to `disk_capacity` distinct verdicts on disk.
    ///
    /// Surviving log records pre-warm both tiers before this returns. If
    /// another process already owns `dir` (single-writer lock), the cache
    /// comes up memory-only rather than corrupting the other writer's log
    /// — check [`CanonicalDecisionCache::persistence_active`]. `Err` is
    /// reserved for environmental failures (unwritable directory).
    pub fn with_persistence(
        capacity: usize,
        dir: &Path,
        disk_capacity: usize,
    ) -> io::Result<CanonicalDecisionCache> {
        let mut cache = CanonicalDecisionCache::new(capacity);
        std::fs::create_dir_all(dir)?;
        let Some(lock) = persist::acquire_dir_lock(dir)? else {
            return Ok(cache);
        };
        let log_path = dir.join(persist::LOG_NAME);
        let bytes = match std::fs::read(&log_path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, report) = persist::scan_log(&bytes);
        let writer = persist::LogWriter::open(&log_path)?;
        cache.tier2 = Some(Tier2 {
            state: Mutex::new(Tier2State {
                index: HashMap::new(),
                writer,
                dead: 0,
            }),
            cap: disk_capacity.max(1),
            tier2_hits: AtomicU64::new(0),
            loaded: AtomicU64::new(0),
            appended: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            corrupt: AtomicU64::new(report.corrupt_spans),
            superseded: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            _lock: lock,
        });
        cache.load_records(records);
        Ok(cache)
    }

    /// Replay scanned log records into the tier-2 index and pre-warm the
    /// in-memory shards, then compact away whatever didn't survive.
    fn load_records(&self, records: Vec<persist::Record>) {
        let t2 = self.tier2.as_ref().expect("load_records requires tier2");
        // Deduplicate fingerprint allocations across the replay without
        // going through the bounded interner (a log can legitimately hold
        // more schemas than the interner admits; `Arc<str>` keys compare
        // by content, so these stay hittable either way).
        let mut interned: HashMap<String, Arc<str>> = HashMap::new();
        let mut st = t2.state.lock().unwrap();
        for rec in records {
            if rec.version != ENGINE_CACHE_VERSION {
                t2.stale.fetch_add(1, Relaxed);
                st.dead += 1;
                continue;
            }
            let decoded =
                CanonicalQuery::from_wire(&rec.q1).zip(CanonicalQuery::from_wire(&rec.q2));
            let Some((q1, q2)) = decoded else {
                t2.corrupt.fetch_add(1, Relaxed);
                st.dead += 1;
                continue;
            };
            let mut intern = |text: String| -> Arc<str> {
                interned
                    .entry(text)
                    .or_insert_with_key(|t| Arc::from(t.as_str()))
                    .clone()
            };
            let key = ContainsKey {
                version: ENGINE_CACHE_VERSION,
                schema: intern(rec.schema),
                theory: intern(rec.theory),
                q1,
                q2,
            };
            if st.index.insert(key.clone(), rec.holds).is_some() {
                // A later record for the same key: the log held a dupe.
                st.dead += 1;
            } else if st.index.len() > t2.cap {
                st.index.remove(&key);
                t2.rejected.fetch_add(1, Relaxed);
                st.dead += 1;
                continue;
            } else {
                t2.loaded.fetch_add(1, Relaxed);
            }
            // Pre-warm tier 1. Overflow here is not a runtime eviction, so
            // the counter stays untouched.
            self.contains.put(key, rec.holds, &self.clock);
        }
        // Anything dead on disk right after a restart stays dead forever —
        // rewrite now so stale versions and corrupt spans don't linger.
        if st.dead > 0 || t2.corrupt.load(Relaxed) > 0 {
            t2.compact(&mut st);
        }
    }

    /// Capacity from `OOCQ_CACHE_CAPACITY` (a positive integer), defaulting
    /// to [`DEFAULT_CAPACITY`]. Persistence comes from `OOCQ_CACHE_DIR`
    /// (unset: memory-only), gated by `OOCQ_CACHE_PERSIST=0` as an off
    /// switch, with `OOCQ_CACHE_DISK_CAPACITY` bounding the on-disk index
    /// (default [`DEFAULT_DISK_CAPACITY`]). A directory that cannot be
    /// opened degrades to memory-only with a note on stderr — a broken
    /// cache volume must never stop the daemon from answering.
    pub fn from_env() -> CanonicalDecisionCache {
        let cap = std::env::var("OOCQ_CACHE_CAPACITY")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        let persist_on = !matches!(
            std::env::var("OOCQ_CACHE_PERSIST")
                .as_deref()
                .map(str::trim),
            Ok("0")
        );
        let dir = std::env::var("OOCQ_CACHE_DIR")
            .ok()
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty());
        if let Some(dir) = dir.filter(|_| persist_on) {
            let disk_cap = std::env::var("OOCQ_CACHE_DISK_CAPACITY")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&c| c > 0)
                .unwrap_or(DEFAULT_DISK_CAPACITY);
            match CanonicalDecisionCache::with_persistence(cap, Path::new(&dir), disk_cap) {
                Ok(cache) => return cache,
                Err(e) => eprintln!("oocq-serve: cache persistence disabled ({dir}: {e})"),
            }
        }
        CanonicalDecisionCache::new(cap)
    }

    /// Is the disk-backed tier live (directory configured *and* its
    /// single-writer lock won)?
    pub fn persistence_active(&self) -> bool {
        self.tier2.is_some()
    }

    /// Counters of the persistent tier, `None` when memory-only.
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.tier2.as_ref().map(Tier2::stats)
    }

    /// The interned fingerprint of a schema: its full rendered description.
    pub fn schema_key(&self, schema: &Schema) -> Arc<str> {
        let text = schema.to_string();
        if let Some(e) = self.schema_keys.read().unwrap().get(&text) {
            e.stamp.store(self.clock.fetch_add(1, Relaxed) + 1, Relaxed);
            return e.key.clone();
        }
        let mut keys = self.schema_keys.write().unwrap();
        // Interning only deduplicates allocations — `Arc<str>` hashes and
        // compares by content, so cache entries keyed through an evicted
        // fingerprint keep hitting. On overflow, evict only the least
        // recently touched fingerprint: a schema flood then recycles one
        // slot per stranger while every hot fingerprint keeps its shared
        // allocation.
        if keys.len() >= self.intern_cap && !keys.contains_key(&text) {
            let victim = keys
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Relaxed))
                .map(|(k, _)| k.clone());
            if let Some(v) = victim {
                keys.remove(&v);
            }
        }
        let stamp = AtomicU64::new(self.clock.fetch_add(1, Relaxed) + 1);
        keys.entry(text)
            .or_insert_with_key(|t| InternEntry {
                key: Arc::from(t.as_str()),
                stamp,
            })
            .key
            .clone()
    }

    /// How many distinct schema fingerprints are currently interned
    /// (bounded by the cache capacity; test/diagnostic aid).
    pub fn interned_schemas(&self) -> usize {
        self.schema_keys.read().unwrap().len()
    }

    /// Traffic counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            contains_hits: self.contains_hits.load(Relaxed),
            contains_misses: self.contains_misses.load(Relaxed),
            minimize_hits: self.minimize_hits.load(Relaxed),
            minimize_misses: self.minimize_misses.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
        }
    }

    /// Total live entries across both tables (test/diagnostic aid).
    pub fn len(&self) -> usize {
        self.contains.len() + self.minimized.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn contains_key(&self, schema: &Schema, q1: &Query, q2: &Query) -> ContainsKey {
        ContainsKey {
            version: ENGINE_CACHE_VERSION,
            schema: self.schema_key(schema),
            theory: schema.constraints_text().clone(),
            q1: canonical_form(q1),
            q2: canonical_form(q2),
        }
    }

    fn minimize_key(&self, schema: &Schema, q: &Query) -> MinimizeKey {
        MinimizeKey {
            version: ENGINE_CACHE_VERSION,
            schema: self.schema_key(schema),
            theory: schema.constraints_text().clone(),
            query: q.display(schema).to_string(),
        }
    }

    /// Tier-1 lookup, falling through to the on-disk index. A tier-2 hit
    /// is promoted into the LRU and counted as a cache hit — singleflight
    /// followers must see it exactly like a memory hit, never as a miss
    /// that elects a leader computation.
    fn lookup_contains(&self, key: &ContainsKey) -> Option<bool> {
        if let Some(v) = self.contains.get(key, &self.clock) {
            self.contains_hits.fetch_add(1, Relaxed);
            return Some(v);
        }
        if let Some(v) = self.tier2.as_ref().and_then(|t2| t2.lookup(key)) {
            if self.contains.put(key.clone(), v, &self.clock) {
                self.evictions.fetch_add(1, Relaxed);
            }
            self.contains_hits.fetch_add(1, Relaxed);
            return Some(v);
        }
        self.contains_misses.fetch_add(1, Relaxed);
        None
    }

    /// Store into tier 1 and (when live) append to the persistent log.
    fn store_contains(&self, key: ContainsKey, holds: bool) {
        if let Some(t2) = &self.tier2 {
            t2.record(&key, holds);
        }
        if self.contains.put(key, holds, &self.clock) {
            self.evictions.fetch_add(1, Relaxed);
        }
    }
}

impl DecisionCache for CanonicalDecisionCache {
    fn get_contains(&self, schema: &Schema, q1: &Query, q2: &Query) -> Option<bool> {
        let key = self.contains_key(schema, q1, q2);
        self.lookup_contains(&key)
    }

    fn put_contains(&self, schema: &Schema, q1: &Query, q2: &Query, holds: bool) {
        let key = self.contains_key(schema, q1, q2);
        self.store_contains(key, holds);
    }

    fn get_minimized(&self, schema: &Schema, q: &Query) -> Option<UnionQuery> {
        let key = self.minimize_key(schema, q);
        let hit = self.minimized.get(&key, &self.clock);
        match hit {
            Some(_) => self.minimize_hits.fetch_add(1, Relaxed),
            None => self.minimize_misses.fetch_add(1, Relaxed),
        };
        hit
    }

    fn put_minimized(&self, schema: &Schema, q: &Query, result: &UnionQuery) {
        let key = self.minimize_key(schema, q);
        if self.minimized.put(key, result.clone(), &self.clock) {
            self.evictions.fetch_add(1, Relaxed);
        }
    }

    // Prepared operands carry their keys pre-computed: the schema
    // fingerprint is already rendered and interned on the PreparedSchema,
    // and canonical forms are memoized on the query handles — so these
    // overrides skip the per-lookup schema render and re-canonicalization
    // the plain methods pay. `Arc<str>` hashes and compares by content, so
    // entries written through either path hit through the other.

    fn get_contains_prepared(&self, p1: &PreparedQuery, p2: &PreparedQuery) -> Option<bool> {
        let key = ContainsKey {
            version: ENGINE_CACHE_VERSION,
            schema: p1.schema().fingerprint().clone(),
            theory: p1.schema().schema().constraints_text().clone(),
            q1: p1.canonical_form().clone(),
            q2: p2.canonical_form().clone(),
        };
        self.lookup_contains(&key)
    }

    fn put_contains_prepared(&self, p1: &PreparedQuery, p2: &PreparedQuery, holds: bool) {
        let key = ContainsKey {
            version: ENGINE_CACHE_VERSION,
            schema: p1.schema().fingerprint().clone(),
            theory: p1.schema().schema().constraints_text().clone(),
            q1: p1.canonical_form().clone(),
            q2: p2.canonical_form().clone(),
        };
        self.store_contains(key, holds);
    }

    fn get_minimized_prepared(&self, p: &PreparedQuery) -> Option<UnionQuery> {
        let key = MinimizeKey {
            version: ENGINE_CACHE_VERSION,
            schema: p.schema().fingerprint().clone(),
            theory: p.schema().schema().constraints_text().clone(),
            query: p.query().display(p.schema().schema()).to_string(),
        };
        let hit = self.minimized.get(&key, &self.clock);
        match hit {
            Some(_) => self.minimize_hits.fetch_add(1, Relaxed),
            None => self.minimize_misses.fetch_add(1, Relaxed),
        };
        hit
    }

    fn put_minimized_prepared(&self, p: &PreparedQuery, result: &UnionQuery) {
        let key = MinimizeKey {
            version: ENGINE_CACHE_VERSION,
            schema: p.schema().fingerprint().clone(),
            theory: p.schema().schema().constraints_text().clone(),
            query: p.query().display(p.schema().schema()).to_string(),
        };
        if self.minimized.put(key, result.clone(), &self.clock) {
            self.evictions.fetch_add(1, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    fn simple(s: &Schema, free: &str, bound: &str) -> Query {
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new(free);
        let x = b.free();
        let y = b.var(bound);
        b.range(x, [c]).range(y, [c]).neq_vars(x, y);
        b.build()
    }

    #[test]
    fn renamed_queries_hit_the_containment_cache() {
        let s = samples::single_class();
        let cache = CanonicalDecisionCache::new(64);
        let (q1, q2) = (simple(&s, "x", "y"), simple(&s, "x", "y"));
        assert_eq!(cache.get_contains(&s, &q1, &q2), None);
        cache.put_contains(&s, &q1, &q2, true);
        // Exact repeat hits.
        assert_eq!(cache.get_contains(&s, &q1, &q2), Some(true));
        // A renamed copy on both sides hits the same entry.
        let (r1, r2) = (simple(&s, "a", "b"), simple(&s, "u", "v"));
        assert_eq!(cache.get_contains(&s, &r1, &r2), Some(true));
        let st = cache.stats();
        assert_eq!(st.contains_hits, 2);
        assert_eq!(st.contains_misses, 1);
    }

    #[test]
    fn different_schemas_do_not_collide() {
        let s1 = samples::single_class();
        let s2 = samples::vehicle_rental();
        let cache = CanonicalDecisionCache::new(64);
        let q = simple(&s1, "x", "y");
        cache.put_contains(&s1, &q, &q, true);
        // Same queries under a different schema: distinct fingerprint.
        assert_eq!(cache.get_contains(&s2, &q, &q), None);
        assert_eq!(cache.get_contains(&s1, &q, &q), Some(true));
    }

    #[test]
    fn minimize_entries_are_exact_keyed() {
        let s = samples::single_class();
        let cache = CanonicalDecisionCache::new(64);
        let q = simple(&s, "x", "y");
        let renamed = simple(&s, "a", "b");
        let result = UnionQuery::single(q.clone());
        cache.put_minimized(&s, &q, &result);
        assert_eq!(cache.get_minimized(&s, &q), Some(result));
        // Isomorphic but differently named: must MISS (output carries names).
        assert_eq!(cache.get_minimized(&s, &renamed), None);
    }

    #[test]
    fn capacity_is_bounded_by_lru_eviction() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let cache = CanonicalDecisionCache::new(SHARD_COUNT); // 1 entry/shard
                                                              // Insert many structurally distinct keys: k-chains of inequalities
                                                              // anchored at the free variable (asymmetric, so canonicalization
                                                              // is cheap — unlike cliques, whose symmetry forces backtracking).
        let chain = |k: usize| {
            let mut b = QueryBuilder::new("x0");
            let vars: Vec<_> = std::iter::once(b.free())
                .chain((1..k).map(|i| b.var(&format!("x{i}"))))
                .collect();
            for &v in &vars {
                b.range(v, [c]);
            }
            for w in vars.windows(2) {
                b.neq_vars(w[0], w[1]);
            }
            b.build()
        };
        let probe = chain(1);
        for k in 1..=48 {
            cache.put_contains(&s, &chain(k), &probe, true);
        }
        assert!(cache.len() <= SHARD_COUNT, "len {} > cap", cache.len());
        assert!(cache.stats().evictions >= 48 - SHARD_COUNT as u64);
        // The newest entry survives in its shard.
        assert_eq!(cache.get_contains(&s, &chain(48), &probe), Some(true));
    }

    #[test]
    fn cache_keys_carry_the_engine_version_stamp() {
        let s = samples::single_class();
        let cache = CanonicalDecisionCache::new(64);
        let q = simple(&s, "x", "y");
        cache.put_contains(&s, &q, &q, true);
        assert_eq!(cache.get_contains(&s, &q, &q), Some(true));
        // An entry written under a different engine version must miss: the
        // stamp is part of key identity, not advisory metadata.
        let stale = ContainsKey {
            version: ENGINE_CACHE_VERSION + 1,
            schema: cache.schema_key(&s),
            theory: s.constraints_text().clone(),
            q1: canonical_form(&q),
            q2: canonical_form(&q),
        };
        assert_eq!(cache.contains.get(&stale, &cache.clock), None);
        let current = ContainsKey {
            version: ENGINE_CACHE_VERSION,
            ..stale
        };
        assert_eq!(cache.contains.get(&current, &cache.clock), Some(true));
    }

    #[test]
    fn constrained_and_unconstrained_schemas_never_share_entries() {
        // Same class structure, one with a constraint block: both the
        // fingerprint and the dedicated theory key component differ, so a
        // verdict cached for one can never answer for the other.
        let plain = oocq_parser::parse_schema("class P {} class Q {} class T : P, Q {}").unwrap();
        let constrained = oocq_parser::parse_schema(
            "class P {} class Q {} class T : P, Q {} constraint disjoint P Q;",
        )
        .unwrap();
        assert!(constrained.has_constraints());
        let cache = CanonicalDecisionCache::new(64);
        let c = plain.class_id("P").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [c]);
        let q = b.build();
        cache.put_contains(&plain, &q, &q, true);
        assert_eq!(cache.get_contains(&constrained, &q, &q), None);
        assert_eq!(cache.get_contains(&plain, &q, &q), Some(true));
    }

    #[test]
    fn schema_fingerprints_are_interned() {
        let s = samples::vehicle_rental();
        let cache = CanonicalDecisionCache::new(8);
        let k1 = cache.schema_key(&s);
        let k2 = cache.schema_key(&s.clone());
        assert!(Arc::ptr_eq(&k1, &k2));
        assert!(k1.contains("class Vehicle"));
    }

    #[test]
    fn schema_interner_is_bounded_and_entries_survive_its_flush() {
        let cap = 4;
        let cache = CanonicalDecisionCache::new(cap);
        let q = simple(&samples::single_class(), "x", "y");
        // A hot schema interned before the flood…
        let hot = samples::vehicle_rental();
        let hot_key = cache.schema_key(&hot);
        // A flood of distinct schemas (one class, varying name) must not
        // grow the interner past the cache capacity — and because eviction
        // is per-entry LRU (not a wholesale flush), the hot fingerprint we
        // keep touching must keep its original allocation throughout.
        for i in 0..(cap * 5) {
            let s = oocq_parser::parse_schema(&format!("class C{i} {{}}")).unwrap();
            cache.put_contains(&s, &q, &q, true);
            assert!(
                cache.interned_schemas() <= cap,
                "interner grew to {} > {cap}",
                cache.interned_schemas()
            );
            assert!(
                Arc::ptr_eq(&hot_key, &cache.schema_key(&hot)),
                "hot fingerprint lost its interned allocation at flood step {i}"
            );
        }
        // Content equality keys the tables, so an entry written before its
        // fingerprint was evicted still hits afterwards (as long as its
        // LRU shard kept it).
        let s0 = oocq_parser::parse_schema("class C0 {}").unwrap();
        cache.put_contains(&s0, &q, &q, true);
        for j in 0..cap {
            let s = oocq_parser::parse_schema(&format!("class Other{j} {{}}")).unwrap();
            let _ = cache.schema_key(&s);
        }
        assert!(cache.interned_schemas() <= cap);
        assert_eq!(cache.get_contains(&s0, &q, &q), Some(true));
    }

    // ---- persistent tier -------------------------------------------------

    use std::path::PathBuf;

    /// Fresh scratch directory for one persistence test.
    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("oocq-cache-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A family of structurally distinct queries to populate caches with.
    fn chain(s: &Schema, k: usize) -> Query {
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x0");
        let vars: Vec<_> = std::iter::once(b.free())
            .chain((1..k).map(|i| b.var(&format!("x{i}"))))
            .collect();
        for &v in &vars {
            b.range(v, [c]);
        }
        for w in vars.windows(2) {
            b.neq_vars(w[0], w[1]);
        }
        b.build()
    }

    fn log_path(dir: &Path) -> PathBuf {
        dir.join(persist::LOG_NAME)
    }

    #[test]
    fn verdicts_survive_a_restart_and_oversize_sets_promote_from_tier2() {
        let dir = scratch("restart");
        let s = samples::single_class();
        let n = SHARD_COUNT * 3; // 3× the reloaded cache's tier-1 capacity
        {
            let cache = CanonicalDecisionCache::with_persistence(4096, &dir, 1024).unwrap();
            assert!(cache.persistence_active());
            let probe = chain(&s, 1);
            for k in 1..=n {
                cache.put_contains(&s, &chain(&s, k), &probe, k % 2 == 0);
            }
            assert_eq!(cache.persist_stats().unwrap().appended, n as u64);
        }
        // "Restart": a new cache over the same directory, with a tier-1 too
        // small to pre-warm everything — the overflow must still be served,
        // through tier-2 promotion.
        let cache = CanonicalDecisionCache::with_persistence(SHARD_COUNT, &dir, 1024).unwrap();
        let st = cache.persist_stats().unwrap();
        assert_eq!(st.loaded, n as u64);
        assert_eq!(st.entries, n);
        let probe = chain(&s, 1);
        for k in 1..=n {
            assert_eq!(
                cache.get_contains(&s, &chain(&s, k), &probe),
                Some(k % 2 == 0),
                "verdict for k={k} lost across restart"
            );
        }
        let st = cache.persist_stats().unwrap();
        assert!(st.tier2_hits > 0, "no lookup exercised tier-2 promotion");
        assert_eq!(cache.stats().contains_hits, n as u64);
        assert_eq!(cache.stats().contains_misses, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_bumped_engine_version_yields_zero_stale_tier2_hits() {
        let dir = scratch("version");
        let s = samples::single_class();
        let q = simple(&s, "x", "y");
        {
            let cache = CanonicalDecisionCache::with_persistence(64, &dir, 64).unwrap();
            cache.put_contains(&s, &q, &q, true);
        }
        // Re-stamp every record as if written by a different engine
        // version — the moral equivalent of bumping ENGINE_CACHE_VERSION
        // without rewriting history.
        let bytes = std::fs::read(log_path(&dir)).unwrap();
        let (records, _) = persist::scan_log(&bytes);
        assert!(!records.is_empty());
        let mut rewritten = Vec::new();
        for mut rec in records {
            rec.version = ENGINE_CACHE_VERSION + 1;
            rewritten.extend_from_slice(&persist::encode_record(&rec));
        }
        std::fs::write(log_path(&dir), rewritten).unwrap();
        let cache = CanonicalDecisionCache::with_persistence(64, &dir, 64).unwrap();
        let st = cache.persist_stats().unwrap();
        assert_eq!(st.stale, 1);
        assert_eq!(st.loaded, 0);
        assert_eq!(st.entries, 0);
        assert_eq!(cache.get_contains(&s, &q, &q), None);
        assert_eq!(cache.persist_stats().unwrap().tier2_hits, 0);
        // Load-time compaction purged the stale records from disk.
        let (after, _) = persist::scan_log(&std::fs::read(log_path(&dir)).unwrap());
        assert!(after.is_empty(), "stale records survived compaction");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_changed_theory_fingerprint_never_hits_old_records() {
        let dir = scratch("theory");
        let plain = oocq_parser::parse_schema("class P {} class Q {} class T : P, Q {}").unwrap();
        let constrained = oocq_parser::parse_schema(
            "class P {} class Q {} class T : P, Q {} constraint disjoint P Q;",
        )
        .unwrap();
        let c = plain.class_id("P").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [c]);
        let q = b.build();
        {
            let cache = CanonicalDecisionCache::with_persistence(64, &dir, 64).unwrap();
            cache.put_contains(&plain, &q, &q, true);
        }
        // Restart under the *constrained* schema: the persisted verdict
        // must be unreachable (different schema and theory fingerprints),
        // while the original identity still replays.
        let cache = CanonicalDecisionCache::with_persistence(64, &dir, 64).unwrap();
        assert_eq!(cache.get_contains(&constrained, &q, &q), None);
        assert_eq!(cache.persist_stats().unwrap().tier2_hits, 0);
        assert_eq!(cache.get_contains(&plain, &q, &q), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_truncated_tail_loses_at_most_the_final_record() {
        let dir = scratch("truncate");
        let s = samples::single_class();
        let probe = chain(&s, 1);
        {
            let cache = CanonicalDecisionCache::with_persistence(64, &dir, 64).unwrap();
            for k in 1..=3 {
                cache.put_contains(&s, &chain(&s, k), &probe, true);
            }
        }
        // Crash mid-append: chop bytes off the final frame.
        let mut bytes = std::fs::read(log_path(&dir)).unwrap();
        let full = bytes.len();
        bytes.truncate(full - 5);
        std::fs::write(log_path(&dir), bytes).unwrap();
        let cache = CanonicalDecisionCache::with_persistence(64, &dir, 64).unwrap();
        let st = cache.persist_stats().unwrap();
        assert_eq!(st.loaded, 2);
        assert_eq!(st.corrupt, 1);
        assert_eq!(cache.get_contains(&s, &chain(&s, 1), &probe), Some(true));
        assert_eq!(cache.get_contains(&s, &chain(&s, 2), &probe), Some(true));
        assert_eq!(cache.get_contains(&s, &chain(&s, 3), &probe), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_corrupted_checksum_skips_one_record_and_keeps_the_rest() {
        let dir = scratch("checksum");
        let s = samples::single_class();
        let probe = chain(&s, 1);
        let mut offsets = Vec::new();
        {
            let cache = CanonicalDecisionCache::with_persistence(64, &dir, 64).unwrap();
            for k in 1..=3 {
                cache.put_contains(&s, &chain(&s, k), &probe, true);
                offsets.push(std::fs::metadata(log_path(&dir)).unwrap().len() as usize);
            }
        }
        // Bit-rot inside the second record's payload.
        let mut bytes = std::fs::read(log_path(&dir)).unwrap();
        let mid = offsets[0] + (offsets[1] - offsets[0]) / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(log_path(&dir), bytes).unwrap();
        let cache = CanonicalDecisionCache::with_persistence(64, &dir, 64).unwrap();
        let st = cache.persist_stats().unwrap();
        assert_eq!(st.loaded, 2);
        assert!(st.corrupt >= 1);
        assert_eq!(cache.get_contains(&s, &chain(&s, 1), &probe), Some(true));
        assert_eq!(cache.get_contains(&s, &chain(&s, 2), &probe), None);
        assert_eq!(cache.get_contains(&s, &chain(&s, 3), &probe), Some(true));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_contended_lockfile_degrades_the_loser_to_memory_only() {
        let dir = scratch("contend");
        let s = samples::single_class();
        let q = simple(&s, "x", "y");
        let winner = CanonicalDecisionCache::with_persistence(64, &dir, 64).unwrap();
        assert!(winner.persistence_active());
        // Second opener of the same directory: no error, no corruption —
        // it simply runs memory-only.
        let loser = CanonicalDecisionCache::with_persistence(64, &dir, 64).unwrap();
        assert!(!loser.persistence_active());
        assert_eq!(loser.persist_stats(), None);
        loser.put_contains(&s, &q, &q, false);
        assert_eq!(loser.get_contains(&s, &q, &q), Some(false));
        // Releasing the winner frees the directory for the next process.
        drop(winner);
        let heir = CanonicalDecisionCache::with_persistence(64, &dir, 64).unwrap();
        assert!(heir.persistence_active());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn superseded_verdicts_trigger_compaction() {
        let dir = scratch("compact");
        let s = samples::single_class();
        let q = simple(&s, "x", "y");
        let cache = CanonicalDecisionCache::with_persistence(64, &dir, 64).unwrap();
        // Flip one key's verdict repeatedly: every flip appends a record
        // that kills the previous one.
        for i in 0..2 * (COMPACT_MIN_DEAD + 2) {
            cache.put_contains(&s, &q, &q, i % 2 == 0);
        }
        let st = cache.persist_stats().unwrap();
        assert!(st.superseded >= COMPACT_MIN_DEAD);
        assert!(st.compactions >= 1, "dead records never compacted");
        assert_eq!(st.entries, 1);
        // The log holds the live set (plus at most the post-compaction
        // appends), not the whole flip history.
        let (records, _) = persist::scan_log(&std::fs::read(log_path(&dir)).unwrap());
        assert!(
            records.len() as u64 <= 1 + COMPACT_MIN_DEAD + 1,
            "log kept {} records for one live key",
            records.len()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_capacity_bounds_the_index_and_rejections_are_counted() {
        let dir = scratch("diskcap");
        let s = samples::single_class();
        let probe = chain(&s, 1);
        let cap = 4;
        {
            let cache = CanonicalDecisionCache::with_persistence(64, &dir, cap).unwrap();
            for k in 1..=10 {
                cache.put_contains(&s, &chain(&s, k), &probe, true);
            }
            let st = cache.persist_stats().unwrap();
            assert_eq!(st.entries, cap);
            assert_eq!(st.rejected, 10 - cap as u64);
            // Rejected writes still serve from tier 1 for this process.
            assert_eq!(cache.get_contains(&s, &chain(&s, 9), &probe), Some(true));
        }
        let cache = CanonicalDecisionCache::with_persistence(64, &dir, cap).unwrap();
        assert_eq!(cache.persist_stats().unwrap().entries, cap);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

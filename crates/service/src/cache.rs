//! The canonical-form decision cache.
//!
//! [`CanonicalDecisionCache`] implements [`oocq_core::DecisionCache`] with
//! isomorphism-invariant keys:
//!
//! * **Schema fingerprint.** A schema is keyed by its full rendered
//!   description ([`Schema`]'s `Display`, the DSL text `oocq-parser`
//!   accepts) — deterministic because tuple types iterate in `BTreeMap`
//!   order, and collision-free because the whole description is the key,
//!   not a hash of it. Fingerprints are interned to `Arc<str>` so the many
//!   cache entries of one session share one allocation.
//! * **Containment entries** are keyed by
//!   `(fingerprint, canonical_form(Q₁), canonical_form(Q₂))` using
//!   [`oocq_query::canonical_form`]. Containment is invariant under
//!   variable renaming of either side, so a renamed copy of a previously
//!   decided pair hits — which is exactly what `nonredundant_union`'s
//!   O(n²) pairwise checks over expansion branches need.
//! * **Minimization entries** are keyed by
//!   `(fingerprint, rendered query)` — the *exact* query, because
//!   minimization output carries variable names back to the user and must
//!   stay bit-identical to an uncached run (see the
//!   [`DecisionCache`] soundness contract).
//!
//! Storage is a sharded `RwLock` LRU: keys hash to one of [`SHARD_COUNT`]
//! shards, reads take the shard's read lock and refresh the entry's access
//! stamp with a relaxed atomic store, writes take the write lock and evict
//! the least-recently-stamped entry once the shard exceeds its capacity
//! share. A global relaxed counter supplies the stamps.

use oocq_core::{DecisionCache, PreparedQuery};
use oocq_query::{canonical_form, CanonicalQuery, Query, UnionQuery};
use oocq_schema::Schema;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, RwLock};

/// Number of independent lock shards per table. Sixteen keeps write
/// contention negligible for worker pools an order of magnitude larger
/// while the per-shard eviction scans stay short.
pub const SHARD_COUNT: usize = 16;

/// Default total capacity (entries per table) when `OOCQ_CACHE_CAPACITY`
/// is unset.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Engine/cache compatibility stamp baked into every cache key.
///
/// A cached verdict is only replayable by an engine that would have
/// computed the same value; bump this whenever a decision-engine change
/// alters what a stored entry means (new verdict semantics, key shape
/// changes, theory rewrites). Version 2 introduced theory-aware keys.
pub const ENGINE_CACHE_VERSION: u32 = 2;

#[derive(Clone, PartialEq, Eq, Hash)]
struct ContainsKey {
    version: u32,
    schema: Arc<str>,
    /// The schema's theory fingerprint (its rendered constraint block).
    /// Redundant with the trailing lines of `schema` today, but keyed
    /// separately so constrained and unconstrained verdicts can never
    /// collide even if fingerprint rendering changes.
    theory: Arc<str>,
    q1: CanonicalQuery,
    q2: CanonicalQuery,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct MinimizeKey {
    version: u32,
    schema: Arc<str>,
    /// See [`ContainsKey::theory`].
    theory: Arc<str>,
    query: String,
}

struct Entry<V> {
    value: V,
    /// Last-access stamp from the cache's global clock; relaxed ordering is
    /// enough because stamps only steer eviction, never correctness.
    stamp: AtomicU64,
}

/// One sharded LRU table.
struct Lru<K, V> {
    shards: Vec<RwLock<HashMap<K, Entry<V>>>>,
    per_shard_cap: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> Lru<K, V> {
    fn new(capacity: usize) -> Lru<K, V> {
        Lru {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            per_shard_cap: capacity.div_ceil(SHARD_COUNT).max(1),
        }
    }

    fn shard(&self, key: &K) -> &RwLock<HashMap<K, Entry<V>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARD_COUNT]
    }

    fn get(&self, key: &K, clock: &AtomicU64) -> Option<V> {
        let shard = self.shard(key).read().unwrap();
        shard.get(key).map(|e| {
            e.stamp.store(clock.fetch_add(1, Relaxed) + 1, Relaxed);
            e.value.clone()
        })
    }

    /// Insert, evicting the shard's least-recently-used entry on overflow.
    /// Returns whether an eviction happened.
    fn put(&self, key: K, value: V, clock: &AtomicU64) -> bool {
        let mut shard = self.shard(&key).write().unwrap();
        let stamp = AtomicU64::new(clock.fetch_add(1, Relaxed) + 1);
        shard.insert(key, Entry { value, stamp });
        if shard.len() > self.per_shard_cap {
            let victim = shard
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Relaxed))
                .map(|(k, _)| k.clone());
            if let Some(k) = victim {
                shard.remove(&k);
                return true;
            }
        }
        false
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }
}

/// A point-in-time snapshot of cache traffic (see
/// [`CanonicalDecisionCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Containment lookups answered from cache.
    pub contains_hits: u64,
    /// Containment lookups that missed.
    pub contains_misses: u64,
    /// Minimization lookups answered from cache.
    pub minimize_hits: u64,
    /// Minimization lookups that missed.
    pub minimize_misses: u64,
    /// Entries evicted by the LRU policy (both tables).
    pub evictions: u64,
}

/// The shared, thread-safe decision cache of `oocq-serve`. See the module
/// docs for the keying scheme.
pub struct CanonicalDecisionCache {
    contains: Lru<ContainsKey, bool>,
    minimized: Lru<MinimizeKey, UnionQuery>,
    /// Interned schema fingerprints, keyed by the rendered description.
    schema_keys: RwLock<HashMap<String, Arc<str>>>,
    /// Bound on the interner, so a long-lived daemon seeing an unbounded
    /// stream of distinct schemas cannot leak memory through it.
    intern_cap: usize,
    clock: AtomicU64,
    contains_hits: AtomicU64,
    contains_misses: AtomicU64,
    minimize_hits: AtomicU64,
    minimize_misses: AtomicU64,
    evictions: AtomicU64,
}

impl CanonicalDecisionCache {
    /// A cache holding up to `capacity` entries in each of its two tables.
    pub fn new(capacity: usize) -> CanonicalDecisionCache {
        CanonicalDecisionCache {
            contains: Lru::new(capacity),
            minimized: Lru::new(capacity),
            schema_keys: RwLock::new(HashMap::new()),
            intern_cap: capacity.max(1),
            clock: AtomicU64::new(0),
            contains_hits: AtomicU64::new(0),
            contains_misses: AtomicU64::new(0),
            minimize_hits: AtomicU64::new(0),
            minimize_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Capacity from `OOCQ_CACHE_CAPACITY` (a positive integer), defaulting
    /// to [`DEFAULT_CAPACITY`].
    pub fn from_env() -> CanonicalDecisionCache {
        let cap = std::env::var("OOCQ_CACHE_CAPACITY")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        CanonicalDecisionCache::new(cap)
    }

    /// The interned fingerprint of a schema: its full rendered description.
    pub fn schema_key(&self, schema: &Schema) -> Arc<str> {
        let text = schema.to_string();
        if let Some(k) = self.schema_keys.read().unwrap().get(&text) {
            return k.clone();
        }
        let mut keys = self.schema_keys.write().unwrap();
        // Interning only deduplicates allocations — `Arc<str>` hashes and
        // compares by content, so cache entries keyed through an evicted
        // fingerprint keep hitting. Dropping the whole table on overflow is
        // therefore sound, and far simpler than per-entry LRU for a map
        // that stays tiny in every workload except a schema flood.
        if keys.len() >= self.intern_cap && !keys.contains_key(&text) {
            keys.clear();
        }
        keys.entry(text.clone())
            .or_insert_with(|| Arc::from(text.as_str()))
            .clone()
    }

    /// How many distinct schema fingerprints are currently interned
    /// (bounded by the cache capacity; test/diagnostic aid).
    pub fn interned_schemas(&self) -> usize {
        self.schema_keys.read().unwrap().len()
    }

    /// Traffic counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            contains_hits: self.contains_hits.load(Relaxed),
            contains_misses: self.contains_misses.load(Relaxed),
            minimize_hits: self.minimize_hits.load(Relaxed),
            minimize_misses: self.minimize_misses.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
        }
    }

    /// Total live entries across both tables (test/diagnostic aid).
    pub fn len(&self) -> usize {
        self.contains.len() + self.minimized.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn contains_key(&self, schema: &Schema, q1: &Query, q2: &Query) -> ContainsKey {
        ContainsKey {
            version: ENGINE_CACHE_VERSION,
            schema: self.schema_key(schema),
            theory: schema.constraints_text().clone(),
            q1: canonical_form(q1),
            q2: canonical_form(q2),
        }
    }

    fn minimize_key(&self, schema: &Schema, q: &Query) -> MinimizeKey {
        MinimizeKey {
            version: ENGINE_CACHE_VERSION,
            schema: self.schema_key(schema),
            theory: schema.constraints_text().clone(),
            query: q.display(schema).to_string(),
        }
    }
}

impl DecisionCache for CanonicalDecisionCache {
    fn get_contains(&self, schema: &Schema, q1: &Query, q2: &Query) -> Option<bool> {
        let key = self.contains_key(schema, q1, q2);
        let hit = self.contains.get(&key, &self.clock);
        match hit {
            Some(_) => self.contains_hits.fetch_add(1, Relaxed),
            None => self.contains_misses.fetch_add(1, Relaxed),
        };
        hit
    }

    fn put_contains(&self, schema: &Schema, q1: &Query, q2: &Query, holds: bool) {
        let key = self.contains_key(schema, q1, q2);
        if self.contains.put(key, holds, &self.clock) {
            self.evictions.fetch_add(1, Relaxed);
        }
    }

    fn get_minimized(&self, schema: &Schema, q: &Query) -> Option<UnionQuery> {
        let key = self.minimize_key(schema, q);
        let hit = self.minimized.get(&key, &self.clock);
        match hit {
            Some(_) => self.minimize_hits.fetch_add(1, Relaxed),
            None => self.minimize_misses.fetch_add(1, Relaxed),
        };
        hit
    }

    fn put_minimized(&self, schema: &Schema, q: &Query, result: &UnionQuery) {
        let key = self.minimize_key(schema, q);
        if self.minimized.put(key, result.clone(), &self.clock) {
            self.evictions.fetch_add(1, Relaxed);
        }
    }

    // Prepared operands carry their keys pre-computed: the schema
    // fingerprint is already rendered and interned on the PreparedSchema,
    // and canonical forms are memoized on the query handles — so these
    // overrides skip the per-lookup schema render and re-canonicalization
    // the plain methods pay. `Arc<str>` hashes and compares by content, so
    // entries written through either path hit through the other.

    fn get_contains_prepared(&self, p1: &PreparedQuery, p2: &PreparedQuery) -> Option<bool> {
        let key = ContainsKey {
            version: ENGINE_CACHE_VERSION,
            schema: p1.schema().fingerprint().clone(),
            theory: p1.schema().schema().constraints_text().clone(),
            q1: p1.canonical_form().clone(),
            q2: p2.canonical_form().clone(),
        };
        let hit = self.contains.get(&key, &self.clock);
        match hit {
            Some(_) => self.contains_hits.fetch_add(1, Relaxed),
            None => self.contains_misses.fetch_add(1, Relaxed),
        };
        hit
    }

    fn put_contains_prepared(&self, p1: &PreparedQuery, p2: &PreparedQuery, holds: bool) {
        let key = ContainsKey {
            version: ENGINE_CACHE_VERSION,
            schema: p1.schema().fingerprint().clone(),
            theory: p1.schema().schema().constraints_text().clone(),
            q1: p1.canonical_form().clone(),
            q2: p2.canonical_form().clone(),
        };
        if self.contains.put(key, holds, &self.clock) {
            self.evictions.fetch_add(1, Relaxed);
        }
    }

    fn get_minimized_prepared(&self, p: &PreparedQuery) -> Option<UnionQuery> {
        let key = MinimizeKey {
            version: ENGINE_CACHE_VERSION,
            schema: p.schema().fingerprint().clone(),
            theory: p.schema().schema().constraints_text().clone(),
            query: p.query().display(p.schema().schema()).to_string(),
        };
        let hit = self.minimized.get(&key, &self.clock);
        match hit {
            Some(_) => self.minimize_hits.fetch_add(1, Relaxed),
            None => self.minimize_misses.fetch_add(1, Relaxed),
        };
        hit
    }

    fn put_minimized_prepared(&self, p: &PreparedQuery, result: &UnionQuery) {
        let key = MinimizeKey {
            version: ENGINE_CACHE_VERSION,
            schema: p.schema().fingerprint().clone(),
            theory: p.schema().schema().constraints_text().clone(),
            query: p.query().display(p.schema().schema()).to_string(),
        };
        if self.minimized.put(key, result.clone(), &self.clock) {
            self.evictions.fetch_add(1, Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    fn simple(s: &Schema, free: &str, bound: &str) -> Query {
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new(free);
        let x = b.free();
        let y = b.var(bound);
        b.range(x, [c]).range(y, [c]).neq_vars(x, y);
        b.build()
    }

    #[test]
    fn renamed_queries_hit_the_containment_cache() {
        let s = samples::single_class();
        let cache = CanonicalDecisionCache::new(64);
        let (q1, q2) = (simple(&s, "x", "y"), simple(&s, "x", "y"));
        assert_eq!(cache.get_contains(&s, &q1, &q2), None);
        cache.put_contains(&s, &q1, &q2, true);
        // Exact repeat hits.
        assert_eq!(cache.get_contains(&s, &q1, &q2), Some(true));
        // A renamed copy on both sides hits the same entry.
        let (r1, r2) = (simple(&s, "a", "b"), simple(&s, "u", "v"));
        assert_eq!(cache.get_contains(&s, &r1, &r2), Some(true));
        let st = cache.stats();
        assert_eq!(st.contains_hits, 2);
        assert_eq!(st.contains_misses, 1);
    }

    #[test]
    fn different_schemas_do_not_collide() {
        let s1 = samples::single_class();
        let s2 = samples::vehicle_rental();
        let cache = CanonicalDecisionCache::new(64);
        let q = simple(&s1, "x", "y");
        cache.put_contains(&s1, &q, &q, true);
        // Same queries under a different schema: distinct fingerprint.
        assert_eq!(cache.get_contains(&s2, &q, &q), None);
        assert_eq!(cache.get_contains(&s1, &q, &q), Some(true));
    }

    #[test]
    fn minimize_entries_are_exact_keyed() {
        let s = samples::single_class();
        let cache = CanonicalDecisionCache::new(64);
        let q = simple(&s, "x", "y");
        let renamed = simple(&s, "a", "b");
        let result = UnionQuery::single(q.clone());
        cache.put_minimized(&s, &q, &result);
        assert_eq!(cache.get_minimized(&s, &q), Some(result));
        // Isomorphic but differently named: must MISS (output carries names).
        assert_eq!(cache.get_minimized(&s, &renamed), None);
    }

    #[test]
    fn capacity_is_bounded_by_lru_eviction() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let cache = CanonicalDecisionCache::new(SHARD_COUNT); // 1 entry/shard
                                                              // Insert many structurally distinct keys: k-chains of inequalities
                                                              // anchored at the free variable (asymmetric, so canonicalization
                                                              // is cheap — unlike cliques, whose symmetry forces backtracking).
        let chain = |k: usize| {
            let mut b = QueryBuilder::new("x0");
            let vars: Vec<_> = std::iter::once(b.free())
                .chain((1..k).map(|i| b.var(&format!("x{i}"))))
                .collect();
            for &v in &vars {
                b.range(v, [c]);
            }
            for w in vars.windows(2) {
                b.neq_vars(w[0], w[1]);
            }
            b.build()
        };
        let probe = chain(1);
        for k in 1..=48 {
            cache.put_contains(&s, &chain(k), &probe, true);
        }
        assert!(cache.len() <= SHARD_COUNT, "len {} > cap", cache.len());
        assert!(cache.stats().evictions >= 48 - SHARD_COUNT as u64);
        // The newest entry survives in its shard.
        assert_eq!(cache.get_contains(&s, &chain(48), &probe), Some(true));
    }

    #[test]
    fn cache_keys_carry_the_engine_version_stamp() {
        let s = samples::single_class();
        let cache = CanonicalDecisionCache::new(64);
        let q = simple(&s, "x", "y");
        cache.put_contains(&s, &q, &q, true);
        assert_eq!(cache.get_contains(&s, &q, &q), Some(true));
        // An entry written under a different engine version must miss: the
        // stamp is part of key identity, not advisory metadata.
        let stale = ContainsKey {
            version: ENGINE_CACHE_VERSION + 1,
            schema: cache.schema_key(&s),
            theory: s.constraints_text().clone(),
            q1: canonical_form(&q),
            q2: canonical_form(&q),
        };
        assert_eq!(cache.contains.get(&stale, &cache.clock), None);
        let current = ContainsKey {
            version: ENGINE_CACHE_VERSION,
            ..stale
        };
        assert_eq!(cache.contains.get(&current, &cache.clock), Some(true));
    }

    #[test]
    fn constrained_and_unconstrained_schemas_never_share_entries() {
        // Same class structure, one with a constraint block: both the
        // fingerprint and the dedicated theory key component differ, so a
        // verdict cached for one can never answer for the other.
        let plain = oocq_parser::parse_schema("class P {} class Q {} class T : P, Q {}").unwrap();
        let constrained = oocq_parser::parse_schema(
            "class P {} class Q {} class T : P, Q {} constraint disjoint P Q;",
        )
        .unwrap();
        assert!(constrained.has_constraints());
        let cache = CanonicalDecisionCache::new(64);
        let c = plain.class_id("P").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [c]);
        let q = b.build();
        cache.put_contains(&plain, &q, &q, true);
        assert_eq!(cache.get_contains(&constrained, &q, &q), None);
        assert_eq!(cache.get_contains(&plain, &q, &q), Some(true));
    }

    #[test]
    fn schema_fingerprints_are_interned() {
        let s = samples::vehicle_rental();
        let cache = CanonicalDecisionCache::new(8);
        let k1 = cache.schema_key(&s);
        let k2 = cache.schema_key(&s.clone());
        assert!(Arc::ptr_eq(&k1, &k2));
        assert!(k1.contains("class Vehicle"));
    }

    #[test]
    fn schema_interner_is_bounded_and_entries_survive_its_flush() {
        let cap = 4;
        let cache = CanonicalDecisionCache::new(cap);
        let q = simple(&samples::single_class(), "x", "y");
        // A flood of distinct schemas (one class, varying name) must not
        // grow the interner past the cache capacity.
        for i in 0..(cap * 5) {
            let s = oocq_parser::parse_schema(&format!("class C{i} {{}}")).unwrap();
            cache.put_contains(&s, &q, &q, true);
            assert!(
                cache.interned_schemas() <= cap,
                "interner grew to {} > {cap}",
                cache.interned_schemas()
            );
        }
        // Content equality keys the tables, so an entry written before the
        // interner flushed still hits afterwards (as long as its LRU shard
        // kept it).
        let s0 = oocq_parser::parse_schema("class C0 {}").unwrap();
        cache.put_contains(&s0, &q, &q, true);
        for j in 0..cap {
            let s = oocq_parser::parse_schema(&format!("class Other{j} {{}}")).unwrap();
            let _ = cache.schema_key(&s);
        }
        assert!(cache.interned_schemas() <= cap);
        assert_eq!(cache.get_contains(&s0, &q, &q), Some(true));
    }
}

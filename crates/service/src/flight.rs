//! Singleflight coalescing of identical in-flight decisions.
//!
//! The canonical decision cache (PR 2) collapses *repeated* work: the
//! second request for an isomorphic pair is a lookup. What it cannot
//! collapse is *concurrent* work — a thundering herd of N identical cold
//! requests all miss, and all N pay the full Theorem 3.1 decision before
//! the first `put` lands. [`Singleflight`] closes that window with the
//! same keys the cache already computes: the first request for a key
//! becomes the **leader** and runs the decision; every request for the
//! same key that arrives while the leader is in flight registers as a
//! **waiter** and is answered from the leader's verdict when it completes
//! (the fan-out), occupying no worker thread while parked.
//!
//! Waiters are opaque to this module (`W` is the reactor's parked-request
//! record), which keeps the table independently testable. Budget
//! semantics are the caller's contract: requests carrying an explicit
//! `limit=` never coalesce (their work accounting is request-local by
//! definition), and a parked waiter whose own wall-clock deadline expires
//! is removed with [`Singleflight::remove_waiter`] and answered
//! `err timeout` without disturbing the leader.

use oocq_query::CanonicalQuery;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

/// The identity of one coalescable decision: the same key the canonical
/// decision cache uses (schema fingerprint + canonical / exact forms),
/// plus the verb — `contains` and `equiv` over the same pair are distinct
/// computations.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum FlightKey {
    /// `contains` keyed up to isomorphism of both sides.
    Contains {
        /// Interned schema fingerprint.
        schema: Arc<str>,
        /// The schema's theory fingerprint (rendered constraint block), so
        /// constrained and unconstrained decisions never coalesce.
        theory: Arc<str>,
        /// Canonical form of the left query.
        q1: CanonicalQuery,
        /// Canonical form of the right query.
        q2: CanonicalQuery,
    },
    /// `equiv` keyed up to isomorphism of both sides.
    Equivalent {
        /// Interned schema fingerprint.
        schema: Arc<str>,
        /// The schema's theory fingerprint (see [`FlightKey::Contains`]).
        theory: Arc<str>,
        /// Canonical form of the left query.
        q1: CanonicalQuery,
        /// Canonical form of the right query.
        q2: CanonicalQuery,
    },
    /// `minimize` keyed by the *exact* rendered query — its output carries
    /// the user's variable names (same rule as the cache).
    Minimize {
        /// Interned schema fingerprint.
        schema: Arc<str>,
        /// The schema's theory fingerprint (see [`FlightKey::Contains`]).
        theory: Arc<str>,
        /// The rendered query text.
        query: String,
    },
}

/// What [`Singleflight::join`] decided for a request.
#[derive(Debug, PartialEq, Eq)]
pub enum JoinOutcome {
    /// No leader in flight: the caller must compute, then
    /// [`Singleflight::complete`] the key to collect its waiters.
    Lead,
    /// A leader is already computing this key; the caller's waiter record
    /// was parked and will be returned to the leader at completion.
    Joined,
}

/// Counters describing coalescing traffic (see
/// [`Singleflight::stats`]); rendered by the `stats show` protocol verb.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Computations led (one per coalesced group, plus every uncontended
    /// coalescable request).
    pub leaders: u64,
    /// Requests parked behind an in-flight leader.
    pub waiters_joined: u64,
    /// Waiter responses fanned out from a leader's verdict.
    pub fanouts: u64,
    /// Waiters removed before fan-out (their own deadline expired).
    pub expired: u64,
    /// Keys currently in flight.
    pub inflight: usize,
}

/// The in-flight table. One entry per key being computed; the entry's
/// vector holds the waiters parked behind the leader.
pub struct Singleflight<W> {
    inflight: Mutex<HashMap<FlightKey, Vec<W>>>,
    leaders: AtomicU64,
    waiters_joined: AtomicU64,
    fanouts: AtomicU64,
    expired: AtomicU64,
}

impl<W> Singleflight<W> {
    /// An empty table.
    pub fn new() -> Singleflight<W> {
        Singleflight {
            inflight: Mutex::new(HashMap::new()),
            leaders: AtomicU64::new(0),
            waiters_joined: AtomicU64::new(0),
            fanouts: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// Either become the leader for `key` (no one is computing it) or park
    /// `waiter()` behind the current leader. The closure is only invoked
    /// on the `Joined` path.
    pub fn join(&self, key: &FlightKey, waiter: impl FnOnce() -> W) -> JoinOutcome {
        let mut map = self.inflight.lock().unwrap();
        match map.get_mut(key) {
            None => {
                map.insert(key.clone(), Vec::new());
                self.leaders.fetch_add(1, Relaxed);
                JoinOutcome::Lead
            }
            Some(parked) => {
                parked.push(waiter());
                self.waiters_joined.fetch_add(1, Relaxed);
                JoinOutcome::Joined
            }
        }
    }

    /// The leader finished: retire the key and take its parked waiters for
    /// fan-out. Joins and completions serialize on the table lock, so a
    /// request either parked here (and is returned) or never saw this
    /// flight at all.
    pub fn complete(&self, key: &FlightKey) -> Vec<W> {
        let parked = self
            .inflight
            .lock()
            .unwrap()
            .remove(key)
            .unwrap_or_default();
        self.fanouts.fetch_add(parked.len() as u64, Relaxed);
        parked
    }

    /// Remove the first parked waiter matching `pred` (used when a
    /// waiter's own deadline expires). Returns `None` when the flight
    /// already completed — the fan-out owns the waiter in that case, and
    /// the caller must not answer it a second time.
    pub fn remove_waiter(&self, key: &FlightKey, mut pred: impl FnMut(&W) -> bool) -> Option<W> {
        let mut map = self.inflight.lock().unwrap();
        let parked = map.get_mut(key)?;
        let at = parked.iter().position(&mut pred)?;
        self.expired.fetch_add(1, Relaxed);
        Some(parked.remove(at))
    }

    /// Traffic counters since construction.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            leaders: self.leaders.load(Relaxed),
            waiters_joined: self.waiters_joined.load(Relaxed),
            fanouts: self.fanouts.load(Relaxed),
            expired: self.expired.load(Relaxed),
            inflight: self.inflight.lock().unwrap().len(),
        }
    }
}

impl<W> Default for Singleflight<W> {
    fn default() -> Self {
        Singleflight::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: &str) -> FlightKey {
        FlightKey::Minimize {
            schema: Arc::from("class C {}"),
            theory: Arc::from(""),
            query: tag.to_owned(),
        }
    }

    #[test]
    fn first_joiner_leads_and_later_joiners_park() {
        let f: Singleflight<u32> = Singleflight::new();
        assert_eq!(f.join(&key("a"), || unreachable!()), JoinOutcome::Lead);
        assert_eq!(f.join(&key("a"), || 1), JoinOutcome::Joined);
        assert_eq!(f.join(&key("a"), || 2), JoinOutcome::Joined);
        // A different key is an independent flight.
        assert_eq!(f.join(&key("b"), || unreachable!()), JoinOutcome::Lead);
        let st = f.stats();
        assert_eq!((st.leaders, st.waiters_joined, st.inflight), (2, 2, 2));

        assert_eq!(f.complete(&key("a")), vec![1, 2]);
        assert_eq!(f.complete(&key("b")), Vec::<u32>::new());
        let st = f.stats();
        assert_eq!((st.fanouts, st.inflight), (2, 0));
        // The key is free again: the next request leads a fresh flight.
        assert_eq!(f.join(&key("a"), || unreachable!()), JoinOutcome::Lead);
    }

    #[test]
    fn expired_waiters_leave_the_flight_exactly_once() {
        let f: Singleflight<u32> = Singleflight::new();
        f.join(&key("a"), || unreachable!());
        f.join(&key("a"), || 1);
        f.join(&key("a"), || 2);
        assert_eq!(f.remove_waiter(&key("a"), |&w| w == 1), Some(1));
        // Already removed: the deadline path must not double-answer.
        assert_eq!(f.remove_waiter(&key("a"), |&w| w == 1), None);
        assert_eq!(f.complete(&key("a")), vec![2]);
        // Completed flight: removal reports the fan-out owns everything.
        assert_eq!(f.remove_waiter(&key("a"), |_| true), None);
        let st = f.stats();
        assert_eq!((st.expired, st.fanouts), (1, 1));
    }

    #[test]
    fn contains_and_equiv_keys_do_not_collide() {
        use oocq_query::canonical_form;
        let s = oocq_schema::samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = oocq_query::QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [c]);
        let q = canonical_form(&b.build());
        let schema: Arc<str> = Arc::from("class C {}");
        let contains = FlightKey::Contains {
            schema: schema.clone(),
            theory: Arc::from(""),
            q1: q.clone(),
            q2: q.clone(),
        };
        let equiv = FlightKey::Equivalent {
            schema,
            theory: Arc::from(""),
            q1: q.clone(),
            q2: q,
        };
        let f: Singleflight<u32> = Singleflight::new();
        assert_eq!(f.join(&contains, || unreachable!()), JoinOutcome::Lead);
        assert_eq!(f.join(&equiv, || unreachable!()), JoinOutcome::Lead);
        assert_eq!(f.stats().inflight, 2);
    }
}

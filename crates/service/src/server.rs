//! The concurrent request loop of `oocq-serve`.
//!
//! One dispatcher thread (the caller of [`serve`]) reads request lines,
//! assigns each a sequence number in input order, executes definitional
//! commands (`schema`, `query`, `stats`, `ping`, `quit`) inline, and hands
//! decision requests — with the session snapshot they should see already
//! captured — to a pool of `OOCQ_THREADS` workers. Workers push finished
//! responses into a reorder buffer that writes them out strictly in
//! sequence order, so the response stream is deterministic no matter how
//! the pool interleaves.
//!
//! Fault isolation (see DESIGN.md §8):
//!
//! * the job queue is **bounded** ([`ServiceEngine::queue_bound`]): the
//!   dispatcher blocks instead of buffering an unbounded backlog, which
//!   propagates backpressure to the client through the unread input stream;
//! * each job runs under **`catch_unwind`**: a panicking request becomes
//!   its own `err internal …` response, so its sequence number is always
//!   emitted and the reorder buffer never stalls;
//! * a **mid-stream read error** is answered with a final `err` line before
//!   the connection closes, instead of a silent teardown.

use crate::engine::{ServiceEngine, Session};
use crate::flight::FlightStats;
use crate::protocol::{parse_request, render_response, Request, RequestStats};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

struct Job {
    seq: u64,
    req: Request,
    snapshot: Option<Arc<Session>>,
    stats_on: bool,
}

struct QueueState<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// The dispatcher → worker job queue, bounded so a slow pool pushes back on
/// the dispatcher (and through it, on the client's unread input) instead of
/// buffering an unbounded backlog. Generic over the job type: [`serve`]
/// queues per-connection jobs, the reactor queues cross-connection ones.
pub(crate) struct Queue<T> {
    state: Mutex<QueueState<T>>,
    bound: usize,
    /// Signals waiting workers that a job arrived (or the queue closed).
    cond: Condvar,
    /// Signals the blocked dispatcher that a slot freed up.
    room: Condvar,
}

impl<T> Queue<T> {
    pub(crate) fn new(bound: usize) -> Queue<T> {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            bound: bound.max(1),
            cond: Condvar::new(),
            room: Condvar::new(),
        }
    }

    /// Blocks while the queue is full (workers always drain it, so this
    /// cannot deadlock; `close` also wakes any blocked pusher).
    pub(crate) fn push(&self, job: T) {
        let mut st = self.state.lock().unwrap();
        while st.jobs.len() >= self.bound && !st.closed {
            st = self.room.wait(st).unwrap();
        }
        st.jobs.push_back(job);
        self.cond.notify_one();
    }

    /// Nonblocking push for the reactor (which must never sleep on a lock):
    /// a full queue hands the job back so the caller can park it.
    pub(crate) fn try_push(&self, job: T) -> Result<(), T> {
        let mut st = self.state.lock().unwrap();
        if st.jobs.len() >= self.bound && !st.closed {
            return Err(job);
        }
        st.jobs.push_back(job);
        self.cond.notify_one();
        Ok(())
    }

    /// Close the queue; workers drain remaining jobs and exit.
    pub(crate) fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cond.notify_all();
        self.room.notify_all();
    }

    pub(crate) fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                self.room.notify_one();
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.cond.wait(st).unwrap();
        }
    }
}

struct EmitState<W: Write> {
    next: u64,
    pending: HashMap<u64, String>,
    out: W,
    error: Option<std::io::Error>,
}

/// The reorder buffer: responses arrive in completion order, leave in
/// sequence order.
struct Emitter<W: Write> {
    state: Mutex<EmitState<W>>,
}

impl<W: Write> Emitter<W> {
    fn new(out: W) -> Emitter<W> {
        Emitter {
            state: Mutex::new(EmitState {
                next: 0,
                pending: HashMap::new(),
                out,
                error: None,
            }),
        }
    }

    fn emit(&self, seq: u64, line: String) {
        let mut st = self.state.lock().unwrap();
        if st.error.is_some() {
            return;
        }
        st.pending.insert(seq, line);
        let mut wrote = false;
        loop {
            let next = st.next;
            let Some(line) = st.pending.remove(&next) else {
                break;
            };
            if let Err(e) = writeln!(st.out, "{line}") {
                st.error = Some(e);
                return;
            }
            st.next += 1;
            wrote = true;
        }
        if wrote {
            if let Err(e) = st.out.flush() {
                st.error = Some(e);
            }
        }
    }

    /// Flush the buffer at end of connection. Every seq is emitted even
    /// when a job fails (see the `catch_unwind` in [`serve`]), so `pending`
    /// is normally empty here — but if a future regression strands
    /// responses behind a gap, write them out in sequence order rather
    /// than silently dropping them.
    fn finish(self) -> std::io::Result<()> {
        let mut st = self.state.into_inner().unwrap();
        if let Some(e) = st.error.take() {
            return Err(e);
        }
        if !st.pending.is_empty() {
            eprintln!(
                "oocq-serve: {} response(s) stranded in reorder buffer",
                st.pending.len()
            );
            let mut stranded: Vec<(u64, String)> = st.pending.drain().collect();
            stranded.sort_unstable_by_key(|&(seq, _)| seq);
            for (_, line) in stranded {
                writeln!(st.out, "{line}")?;
            }
        }
        st.out.flush()
    }
}

/// Run the request loop over arbitrary streams until EOF or `quit`,
/// blocking until every response has been written.
pub fn serve<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    engine: &ServiceEngine,
) -> std::io::Result<()> {
    let workers = engine.pool_threads().max(1);
    let queue = Queue::new(engine.queue_bound());
    let emitter = Emitter::new(output);
    // Decision requests dispatched but not yet answered, so `stats show`
    // can report this connection's live backlog like the reactor does.
    let inflight = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(job) = queue.pop() {
                    // A panic inside one request must not take the worker
                    // (and with it, every queued seq) down: turn it into
                    // this request's own error response. The engine holds
                    // no locks across `execute`, so unwind safety here is
                    // only about the panic payload, which we discard.
                    let Job {
                        seq,
                        req,
                        snapshot,
                        stats_on,
                    } = job;
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        engine.execute(&req, snapshot.as_ref())
                    }));
                    let line = match outcome {
                        Ok((result, stats)) => {
                            let st = if stats_on { Some(&stats) } else { None };
                            render_response(seq, &result, st)
                        }
                        Err(_) => render_response(
                            seq,
                            &Err("internal: worker panicked executing this request".to_owned()),
                            None,
                        ),
                    };
                    emitter.emit(seq, line);
                    inflight.fetch_sub(1, SeqCst);
                }
            });
        }

        let mut seq = 0u64;
        let mut stats_on = true;
        for line in input.lines() {
            let line = match line {
                Ok(line) => line,
                Err(e) => {
                    // Tell the client why the stream ends instead of
                    // closing silently mid-session.
                    let resp: Result<String, String> =
                        Err(format!("read error: {e}; closing connection"));
                    emitter.emit(seq, render_response(seq, &resp, None));
                    break;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            let start = Instant::now();
            let parsed = parse_request(&line);
            // Decision requests go to the pool; everything else — including
            // parse errors — is answered inline so session state and the
            // stats toggle stay in input order.
            let inline: Result<String, String> = match &parsed {
                Err(e) => Err(e.clone()),
                Ok(req) if req.is_decision() => match engine.snapshot_for(req) {
                    Ok(snapshot) => {
                        inflight.fetch_add(1, SeqCst);
                        queue.push(Job {
                            seq,
                            req: req.clone(),
                            snapshot,
                            stats_on,
                        });
                        seq += 1;
                        continue;
                    }
                    Err(e) => Err(e),
                },
                Ok(Request::Ping) => Ok("pong".to_owned()),
                Ok(Request::Stats(on)) => {
                    stats_on = *on;
                    Ok(format!("stats {}", if *on { "on" } else { "off" }))
                }
                Ok(Request::Quit) => Ok("bye".to_owned()),
                Ok(Request::DefineSchema { session, text }) => engine.define_schema(session, text),
                Ok(Request::DefineQuery {
                    session,
                    name,
                    text,
                }) => engine.define_query(session, name, text),
                Ok(Request::DefineConstraint { session, text }) => {
                    engine.define_constraint(session, text)
                }
                // The blocking path has no singleflight table, so the
                // coalescing counters are legitimately zero — but the
                // decision backlog is real and reported live, like the
                // reactor's per-connection count.
                Ok(Request::StatsShow) => {
                    Ok(engine.stats_report(&FlightStats::default(), inflight.load(SeqCst)))
                }
                Ok(other) => Err(format!("internal: unhandled request `{other:?}`")),
            };
            let stats = RequestStats {
                cached: 0,
                decided: 0,
                wall_us: start.elapsed().as_micros() as u64,
                threads: workers,
            };
            let st = if stats_on { Some(&stats) } else { None };
            emitter.emit(seq, render_response(seq, &inline, st));
            let quitting = matches!(parsed, Ok(Request::Quit));
            seq += 1;
            if quitting {
                break;
            }
        }
        queue.close();
    });
    emitter.finish()
}

/// How an `accept` failure should be handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AcceptClass {
    /// Resource pressure or a peer that vanished mid-handshake: log, back
    /// off, keep serving the connections we already have.
    Transient,
    /// The listener itself is broken (bad fd, unsupported operation):
    /// retrying can never succeed, so the accept loop must stop.
    Fatal,
}

/// Classify an `accept` error. Transient kinds are resource exhaustion
/// (`EMFILE`/`ENFILE`/`ENOMEM`/`ENOBUFS`), interruption, and peers that
/// reset or aborted during the handshake (`ECONNABORTED`/`ECONNRESET`);
/// everything else — notably `EBADF`/`EINVAL`/`ENOTSOCK` — means the
/// listening socket itself is gone and the loop should surface the error.
pub(crate) fn classify_accept_error(e: &std::io::Error) -> AcceptClass {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::Interrupted
        | ErrorKind::WouldBlock
        | ErrorKind::ConnectionAborted
        | ErrorKind::ConnectionReset
        | ErrorKind::OutOfMemory => AcceptClass::Transient,
        _ => match e.raw_os_error() {
            // ENOMEM, ENFILE, EMFILE, ENOBUFS: the fd/memory pressure
            // cases ErrorKind does not (or did not historically) map.
            Some(12 | 23 | 24 | 105) => AcceptClass::Transient,
            _ => AcceptClass::Fatal,
        },
    }
}

/// The response line sent (best-effort) to a connection rejected by the
/// `OOCQ_MAX_CONNS` cap before it is closed.
pub(crate) fn busy_line(max_conns: usize) -> String {
    render_response(
        0,
        &Err(format!(
            "busy: connection limit ({max_conns}) reached; try again later"
        )),
        None,
    )
}

/// The thread-per-connection TCP accept loop (`OOCQ_REACTOR=0`), kept as a
/// differential reference for the reactor: one [`serve`] loop (and so one
/// worker pool) per connection, a concurrent-connection cap answered with
/// `err busy`, and accept-error classification with exponential backoff
/// that resets after a successful accept. Returns when `stop` is set (and
/// every connection thread has finished) or on a fatal accept error.
pub fn accept_loop(
    listener: &std::net::TcpListener,
    engine: &ServiceEngine,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let live = AtomicUsize::new(0);
    let max_conns = engine.max_conns();
    let base_backoff = std::time::Duration::from_millis(10);
    let mut backoff = base_backoff;
    let mut result = Ok(());
    std::thread::scope(|scope| {
        while !stop.load(SeqCst) {
            let (stream, peer) = match listener.accept() {
                Ok(conn) => {
                    backoff = base_backoff;
                    conn
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    continue;
                }
                Err(e) => match classify_accept_error(&e) {
                    AcceptClass::Transient => {
                        eprintln!("oocq-serve: accept failed: {e}; retrying in {backoff:?}");
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(std::time::Duration::from_secs(1));
                        continue;
                    }
                    AcceptClass::Fatal => {
                        eprintln!("oocq-serve: accept failed fatally: {e}");
                        result = Err(e);
                        break;
                    }
                },
            };
            if live.load(SeqCst) >= max_conns {
                let mut stream = stream;
                let _ = stream.write_all(busy_line(max_conns).as_bytes());
                let _ = stream.write_all(b"\n");
                continue;
            }
            live.fetch_add(1, SeqCst);
            let live = &live;
            scope.spawn(move || {
                let reader = std::io::BufReader::new(match stream.try_clone() {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("oocq-serve: {peer}: {e}");
                        live.fetch_sub(1, SeqCst);
                        return;
                    }
                });
                if let Err(e) = serve(reader, stream, engine) {
                    eprintln!("oocq-serve: {peer}: {e}");
                }
                live.fetch_sub(1, SeqCst);
            });
        }
    });
    result
}

/// Entry point of the `oocq-serve` binary: serve stdin/stdout, or — when
/// `OOCQ_LISTEN=<addr:port>` is set — accept TCP connections over a shared
/// engine (and shared cache). On Linux, TCP connections are multiplexed by
/// the event-driven reactor by default (`OOCQ_REACTOR=0` selects the
/// legacy thread-per-connection loop); elsewhere the poller has only a
/// spin-polling fallback backend, so thread-per-connection is the default
/// and `OOCQ_REACTOR=1` opts into the reactor explicitly.
pub fn daemon_main() -> std::io::Result<()> {
    let engine = Arc::new(ServiceEngine::from_env());
    match std::env::var("OOCQ_LISTEN") {
        Ok(addr) if !addr.trim().is_empty() => {
            let listener = std::net::TcpListener::bind(addr.trim())?;
            let reactor = std::env::var("OOCQ_REACTOR")
                .map(|v| v.trim() != "0")
                .unwrap_or(cfg!(target_os = "linux"));
            eprintln!(
                "oocq-serve listening on {} ({}, {} worker threads, max {} connections)",
                listener.local_addr()?,
                if reactor {
                    "reactor"
                } else {
                    "thread-per-connection"
                },
                engine.pool_threads().max(1),
                engine.max_conns(),
            );
            let stop = AtomicBool::new(false);
            if reactor {
                crate::reactor::run(&listener, &engine, &stop)
            } else {
                accept_loop(&listener, &engine, &stop)
            }
        }
        _ => serve(std::io::stdin().lock(), std::io::stdout(), &engine),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CanonicalDecisionCache;
    use oocq_core::EngineConfig;

    fn run(engine: &ServiceEngine, input: &str) -> String {
        let mut out = Vec::new();
        serve(input.as_bytes(), &mut out, engine).unwrap();
        String::from_utf8(out).unwrap()
    }

    fn engine(threads: usize) -> ServiceEngine {
        ServiceEngine::with_cache(
            EngineConfig::with_threads(threads),
            Some(Arc::new(CanonicalDecisionCache::new(256))),
        )
    }

    const SESSION: &str = "stats off\n\
                           schema s class C {}\n\
                           query s Q { x | x in C }\n\
                           query s R { x | exists y: x in C & y in C & x != y }\n";

    #[test]
    fn responses_come_back_in_request_order() {
        for threads in [1, 8] {
            let e = engine(threads);
            let mut input = SESSION.to_owned();
            for _ in 0..12 {
                input.push_str("contains s R Q\ncontains s Q R\nminimize s R\n");
            }
            input.push_str("quit\n");
            let out = run(&e, &input);
            let seqs: Vec<u64> = out
                .lines()
                .map(|l| {
                    let end = l.find(']').unwrap();
                    l[1..end].parse().unwrap()
                })
                .collect();
            let expected: Vec<u64> = (0..seqs.len() as u64).collect();
            assert_eq!(seqs, expected, "{threads} threads: out of order");
            assert!(out.ends_with(&format!("[{}] ok bye\n", seqs.len() - 1)));
        }
    }

    #[test]
    fn output_is_identical_across_thread_counts_with_stats_off() {
        let mut input = SESSION.to_owned();
        input.push_str(
            "contains s Q R\nequiv s Q Q\nsatisfiable s R\nexpand s R\nminimize s R\n\
             explain s Q R\nquit\n",
        );
        let serial = run(&engine(1), &input);
        let pooled = run(&engine(8), &input);
        assert_eq!(serial, pooled);
        assert!(serial.contains("ok holds"));
    }

    #[test]
    fn parse_and_session_errors_are_responses_not_crashes() {
        let e = engine(2);
        let out = run(&e, "stats off\nfrobnicate\ncontains ghost A B\nping\n");
        assert!(out.contains("[1] err unknown command `frobnicate`"));
        assert!(out.contains("[2] err unknown session `ghost`"));
        assert!(out.contains("[3] ok pong"));
    }

    #[test]
    fn stats_suffix_present_by_default_and_toggleable() {
        let e = engine(1);
        let out = run(
            &e,
            "schema s class C {}\nquery s Q { x | x in C }\ncontains s Q Q\n\
             stats off\ncontains s Q Q\nquit\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains(" # cached=0 decided=0"), "{:?}", lines[0]);
        assert!(lines[2].contains("ok holds # cached="), "{:?}", lines[2]);
        assert!(lines[2].contains("threads=1"));
        assert!(!lines[4].contains('#'), "{:?}", lines[4]);
        assert_eq!(lines[4], "[4] ok holds");
    }

    #[test]
    fn definitions_apply_to_later_requests_even_with_a_busy_pool() {
        let e = engine(8);
        let out = run(
            &e,
            "stats off\nschema s class C {}\nquery s Q { x | x in C }\n\
             contains s Q Q\nschema s class D {}\nquery s P { x | x in D }\n\
             minimize s P\nquit\n",
        );
        assert!(out.contains("ok holds"));
        assert!(out.contains("ok { x | x in D }"));
    }

    /// `stats show` on the blocking path reports the connection's live
    /// decision backlog (the coalescing counters are legitimately zero:
    /// there is no singleflight table without the reactor). The engine's
    /// test-only `__slow__` latency hook holds the dispatched decision in
    /// flight for a full second, so the inline `stats show` answer
    /// deterministically sees backlog=1.
    #[test]
    fn stats_show_reports_the_live_decision_backlog() {
        let e = engine(2);
        let out = run(
            &e,
            "stats off\nschema s class T1 {}\nquery s __slow__ { x | x in T1 }\n\
             contains s __slow__ __slow__\nstats show\nquit\n",
        );
        let show = out
            .lines()
            .find(|l| l.starts_with("[4]"))
            .unwrap_or_else(|| panic!("no stats line in {out}"));
        assert!(show.contains("conn: backlog=1"), "{show}");
        assert!(show.contains("coalesce: leaders=0"), "{show}");
        assert!(out.contains("[3] ok holds"), "{out}");
    }

    #[test]
    fn eof_without_quit_drains_cleanly() {
        let e = engine(4);
        let out = run(
            &e,
            "stats off\nschema s class C {}\nquery s Q { x | x in C }\ncontains s Q Q\n",
        );
        assert!(out.ends_with("[3] ok holds\n"));
    }

    /// A session whose `contains s Big R` walks 2^12 membership branches
    /// before concluding — enough work for a small deadline or `limit=` to
    /// trip mid-run (see the matching construction in engine.rs tests; the
    /// inequality chain keeps the cache's canonical labeling cheap).
    fn explosion_program(tail: &str) -> String {
        let vars: Vec<String> = (1..=12).map(|i| format!("x{i}")).collect();
        let chain: String = vars
            .windows(2)
            .map(|w| format!(" & {} != {}", w[0], w[1]))
            .collect();
        let big = format!(
            "{{ x0 | exists {}, z, y: x0 in T1{}{chain} & z in T1 & y in T2 & x0 in y.A & z not in y.A }}",
            vars.join(", "),
            vars.iter()
                .map(|v| format!(" & {v} in T1"))
                .collect::<String>(),
        );
        format!(
            "stats off\n\
             schema s class T1 {{}} class T2 {{ A: {{T1}}; }}\n\
             query s Big {big}\n\
             query s R {{ x | exists u, y: x in T1 & u in T1 & y in T2 & u not in y.A }}\n\
             {tail}"
        )
    }

    #[test]
    fn a_panicking_request_is_isolated_to_its_own_response() {
        let e = engine(2);
        let out = run(
            &e,
            "stats off\nschema s class C {}\nquery s Q { x | x in C }\n\
             contains s __panic__ Q\ncontains s Q Q\nping\nquit\n",
        );
        assert!(
            out.contains("[3] err internal: worker panicked executing this request"),
            "{out}"
        );
        assert!(out.contains("[4] ok holds"), "{out}");
        assert!(out.contains("[5] ok pong"), "{out}");
        assert!(out.ends_with("[6] ok bye\n"), "{out}");
    }

    #[test]
    fn a_deadline_timeout_leaves_the_connection_usable() {
        let e = engine(2).with_deadline(Some(std::time::Duration::from_millis(40)));
        let out = run(
            &e,
            &explosion_program("contains s Big R\nping\ncontains s R R\nquit\n"),
        );
        assert!(out.contains("[4] err timeout"), "{out}");
        assert!(out.contains("[5] ok pong"), "{out}");
        assert!(out.contains("[6] ok holds"), "{out}");
        assert!(out.ends_with("[7] ok bye\n"), "{out}");
    }

    #[test]
    fn a_limit_option_timeout_leaves_the_connection_usable() {
        let e = engine(2);
        let out = run(
            &e,
            &explosion_program("limit=50 contains s Big R\ncontains s R R\nquit\n"),
        );
        assert!(out.contains("[4] err timeout"), "{out}");
        assert!(out.contains("[5] ok holds"), "{out}");
        assert!(out.ends_with("[6] ok bye\n"), "{out}");
    }

    #[test]
    fn a_tiny_queue_bound_still_answers_a_large_piped_program_in_order() {
        let e = engine(2).with_queue_bound(Some(2));
        let mut input = SESSION.to_owned();
        for _ in 0..50 {
            input.push_str("contains s Q R\ncontains s R Q\n");
        }
        input.push_str("quit\n");
        let out = run(&e, &input);
        let seqs: Vec<u64> = out
            .lines()
            .map(|l| l[1..l.find(']').unwrap()].parse().unwrap())
            .collect();
        let expected: Vec<u64> = (0..seqs.len() as u64).collect();
        assert_eq!(seqs, expected);
        assert!(
            out.ends_with(&format!("[{}] ok bye\n", seqs.len() - 1)),
            "{out}"
        );
    }

    #[test]
    fn a_mid_stream_read_error_gets_a_final_err_response() {
        /// Yields its buffered bytes, then fails instead of reporting EOF.
        struct FailingReader(std::io::Cursor<Vec<u8>>);
        impl std::io::Read for FailingReader {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.0.read(buf)? {
                    0 => Err(std::io::Error::new(
                        std::io::ErrorKind::ConnectionReset,
                        "peer vanished",
                    )),
                    n => Ok(n),
                }
            }
        }
        let reader = std::io::BufReader::new(FailingReader(std::io::Cursor::new(
            b"stats off\nping\n".to_vec(),
        )));
        let mut out = Vec::new();
        serve(reader, &mut out, &engine(1)).unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("[1] ok pong"), "{out}");
        assert!(
            out.ends_with("[2] err read error: peer vanished; closing connection\n"),
            "{out}"
        );
    }

    #[test]
    fn finish_flushes_stranded_responses_instead_of_dropping_them() {
        let mut out = Vec::new();
        let emitter = Emitter::new(&mut out);
        // Seq 0 never arrives, so seq 1 is stuck in the reorder buffer.
        emitter.emit(1, "[1] ok late".to_owned());
        emitter.finish().unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "[1] ok late\n");
    }
}

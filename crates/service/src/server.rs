//! The concurrent request loop of `oocq-serve`.
//!
//! One dispatcher thread (the caller of [`serve`]) reads request lines,
//! assigns each a sequence number in input order, executes definitional
//! commands (`schema`, `query`, `stats`, `ping`, `quit`) inline, and hands
//! decision requests — with the session snapshot they should see already
//! captured — to a pool of `OOCQ_THREADS` workers. Workers push finished
//! responses into a reorder buffer that writes them out strictly in
//! sequence order, so the response stream is deterministic no matter how
//! the pool interleaves.

use crate::engine::{ServiceEngine, Session};
use crate::protocol::{parse_request, render_response, Request, RequestStats};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

struct Job {
    seq: u64,
    req: Request,
    snapshot: Option<Arc<Session>>,
    stats_on: bool,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The dispatcher → worker job queue.
struct Queue {
    state: Mutex<QueueState>,
    cond: Condvar,
}

impl Queue {
    fn new() -> Queue {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        self.state.lock().unwrap().jobs.push_back(job);
        self.cond.notify_one();
    }

    /// Close the queue; workers drain remaining jobs and exit.
    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cond.notify_all();
    }

    fn pop(&self) -> Option<Job> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(job) = st.jobs.pop_front() {
                return Some(job);
            }
            if st.closed {
                return None;
            }
            st = self.cond.wait(st).unwrap();
        }
    }
}

struct EmitState<W: Write> {
    next: u64,
    pending: HashMap<u64, String>,
    out: W,
    error: Option<std::io::Error>,
}

/// The reorder buffer: responses arrive in completion order, leave in
/// sequence order.
struct Emitter<W: Write> {
    state: Mutex<EmitState<W>>,
}

impl<W: Write> Emitter<W> {
    fn new(out: W) -> Emitter<W> {
        Emitter {
            state: Mutex::new(EmitState {
                next: 0,
                pending: HashMap::new(),
                out,
                error: None,
            }),
        }
    }

    fn emit(&self, seq: u64, line: String) {
        let mut st = self.state.lock().unwrap();
        if st.error.is_some() {
            return;
        }
        st.pending.insert(seq, line);
        let mut wrote = false;
        loop {
            let next = st.next;
            let Some(line) = st.pending.remove(&next) else {
                break;
            };
            if let Err(e) = writeln!(st.out, "{line}") {
                st.error = Some(e);
                return;
            }
            st.next += 1;
            wrote = true;
        }
        if wrote {
            if let Err(e) = st.out.flush() {
                st.error = Some(e);
            }
        }
    }

    fn finish(self) -> std::io::Result<()> {
        let mut st = self.state.into_inner().unwrap();
        debug_assert!(st.pending.is_empty(), "responses left in reorder buffer");
        match st.error.take() {
            Some(e) => Err(e),
            None => st.out.flush(),
        }
    }
}

/// Run the request loop over arbitrary streams until EOF or `quit`,
/// blocking until every response has been written.
pub fn serve<R: BufRead, W: Write + Send>(
    input: R,
    output: W,
    engine: &ServiceEngine,
) -> std::io::Result<()> {
    let workers = engine.pool_threads().max(1);
    let queue = Queue::new();
    let emitter = Emitter::new(output);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some(job) = queue.pop() {
                    let (result, stats) = engine.execute(&job.req, job.snapshot.as_ref());
                    let st = if job.stats_on { Some(&stats) } else { None };
                    emitter.emit(job.seq, render_response(job.seq, &result, st));
                }
            });
        }

        let mut seq = 0u64;
        let mut stats_on = true;
        for line in input.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let start = Instant::now();
            let parsed = parse_request(&line);
            // Decision requests go to the pool; everything else — including
            // parse errors — is answered inline so session state and the
            // stats toggle stay in input order.
            let inline: Result<String, String> = match &parsed {
                Err(e) => Err(e.clone()),
                Ok(req) if req.is_decision() => match engine.snapshot_for(req) {
                    Ok(snapshot) => {
                        queue.push(Job {
                            seq,
                            req: req.clone(),
                            snapshot,
                            stats_on,
                        });
                        seq += 1;
                        continue;
                    }
                    Err(e) => Err(e),
                },
                Ok(Request::Ping) => Ok("pong".to_owned()),
                Ok(Request::Stats(on)) => {
                    stats_on = *on;
                    Ok(format!("stats {}", if *on { "on" } else { "off" }))
                }
                Ok(Request::Quit) => Ok("bye".to_owned()),
                Ok(Request::DefineSchema { session, text }) => engine.define_schema(session, text),
                Ok(Request::DefineQuery {
                    session,
                    name,
                    text,
                }) => engine.define_query(session, name, text),
                Ok(other) => Err(format!("internal: unhandled request `{other:?}`")),
            };
            let stats = RequestStats {
                cached: 0,
                decided: 0,
                wall_us: start.elapsed().as_micros() as u64,
                threads: workers,
            };
            let st = if stats_on { Some(&stats) } else { None };
            emitter.emit(seq, render_response(seq, &inline, st));
            let quitting = matches!(parsed, Ok(Request::Quit));
            seq += 1;
            if quitting {
                break;
            }
        }
        queue.close();
    });
    emitter.finish()
}

/// Entry point of the `oocq-serve` binary: serve stdin/stdout, or — when
/// `OOCQ_LISTEN=<addr:port>` is set — accept TCP connections, one request
/// loop per connection over a shared engine (and shared cache).
pub fn daemon_main() -> std::io::Result<()> {
    let engine = Arc::new(ServiceEngine::from_env());
    match std::env::var("OOCQ_LISTEN") {
        Ok(addr) if !addr.trim().is_empty() => {
            let listener = std::net::TcpListener::bind(addr.trim())?;
            eprintln!(
                "oocq-serve listening on {} ({} worker threads per connection)",
                listener.local_addr()?,
                engine.pool_threads().max(1)
            );
            loop {
                let (stream, peer) = listener.accept()?;
                let engine = engine.clone();
                std::thread::spawn(move || {
                    let reader = std::io::BufReader::new(match stream.try_clone() {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("oocq-serve: {peer}: {e}");
                            return;
                        }
                    });
                    if let Err(e) = serve(reader, stream, &engine) {
                        eprintln!("oocq-serve: {peer}: {e}");
                    }
                });
            }
        }
        _ => serve(std::io::stdin().lock(), std::io::stdout(), &engine),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CanonicalDecisionCache;
    use oocq_core::EngineConfig;

    fn run(engine: &ServiceEngine, input: &str) -> String {
        let mut out = Vec::new();
        serve(input.as_bytes(), &mut out, engine).unwrap();
        String::from_utf8(out).unwrap()
    }

    fn engine(threads: usize) -> ServiceEngine {
        ServiceEngine::with_cache(
            EngineConfig::with_threads(threads),
            Some(Arc::new(CanonicalDecisionCache::new(256))),
        )
    }

    const SESSION: &str = "stats off\n\
                           schema s class C {}\n\
                           query s Q { x | x in C }\n\
                           query s R { x | exists y: x in C & y in C & x != y }\n";

    #[test]
    fn responses_come_back_in_request_order() {
        for threads in [1, 8] {
            let e = engine(threads);
            let mut input = SESSION.to_owned();
            for _ in 0..12 {
                input.push_str("contains s R Q\ncontains s Q R\nminimize s R\n");
            }
            input.push_str("quit\n");
            let out = run(&e, &input);
            let seqs: Vec<u64> = out
                .lines()
                .map(|l| {
                    let end = l.find(']').unwrap();
                    l[1..end].parse().unwrap()
                })
                .collect();
            let expected: Vec<u64> = (0..seqs.len() as u64).collect();
            assert_eq!(seqs, expected, "{threads} threads: out of order");
            assert!(out.ends_with(&format!("[{}] ok bye\n", seqs.len() - 1)));
        }
    }

    #[test]
    fn output_is_identical_across_thread_counts_with_stats_off() {
        let mut input = SESSION.to_owned();
        input.push_str(
            "contains s Q R\nequiv s Q Q\nsatisfiable s R\nexpand s R\nminimize s R\n\
             explain s Q R\nquit\n",
        );
        let serial = run(&engine(1), &input);
        let pooled = run(&engine(8), &input);
        assert_eq!(serial, pooled);
        assert!(serial.contains("ok holds"));
    }

    #[test]
    fn parse_and_session_errors_are_responses_not_crashes() {
        let e = engine(2);
        let out = run(&e, "stats off\nfrobnicate\ncontains ghost A B\nping\n");
        assert!(out.contains("[1] err unknown command `frobnicate`"));
        assert!(out.contains("[2] err unknown session `ghost`"));
        assert!(out.contains("[3] ok pong"));
    }

    #[test]
    fn stats_suffix_present_by_default_and_toggleable() {
        let e = engine(1);
        let out = run(
            &e,
            "schema s class C {}\nquery s Q { x | x in C }\ncontains s Q Q\n\
             stats off\ncontains s Q Q\nquit\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains(" # cached=0 decided=0"), "{:?}", lines[0]);
        assert!(lines[2].contains("ok holds # cached="), "{:?}", lines[2]);
        assert!(lines[2].contains("threads=1"));
        assert!(!lines[4].contains('#'), "{:?}", lines[4]);
        assert_eq!(lines[4], "[4] ok holds");
    }

    #[test]
    fn definitions_apply_to_later_requests_even_with_a_busy_pool() {
        let e = engine(8);
        let out = run(
            &e,
            "stats off\nschema s class C {}\nquery s Q { x | x in C }\n\
             contains s Q Q\nschema s class D {}\nquery s P { x | x in D }\n\
             minimize s P\nquit\n",
        );
        assert!(out.contains("ok holds"));
        assert!(out.contains("ok { x | x in D }"));
    }

    #[test]
    fn eof_without_quit_drains_cleanly() {
        let e = engine(4);
        let out = run(
            &e,
            "stats off\nschema s class C {}\nquery s Q { x | x in C }\ncontains s Q Q\n",
        );
        assert!(out.ends_with("[3] ok holds\n"));
    }
}

//! Minimal readiness polling for the serving reactor.
//!
//! [`Poller`] is a thin, level-triggered readiness-notification facade: on
//! Linux it is backed by `epoll` through direct FFI declarations against
//! the C library the standard library already links (no external crate);
//! elsewhere it degrades to a correctness-only fallback that reports every
//! registered source ready after a short sleep — nonblocking I/O keeps
//! that safe (spurious readiness just yields `WouldBlock`), but it polls
//! instead of sleeping on kernel readiness, so the daemon only defaults
//! to the reactor on Linux; other platforms keep the
//! thread-per-connection loop unless `OOCQ_REACTOR=1` opts in explicitly.
//! When idle the fallback backs off exponentially (1ms doubling to 64ms
//! naps), resetting on [`Poller::note_progress`] from the reactor or any
//! registration change, so a quiet daemon no longer busy-wakes ~1000×/s.
//!
//! The `sys` island below is the crate's single `#[allow(unsafe_code)]`
//! region; besides epoll it carries the one-line `flock` shim behind
//! [`try_exclusive_lock`], the persistent decision cache's single-writer
//! directory lock.
//!
//! The facade is deliberately tiny — register / modify / deregister a raw
//! fd under a `u64` token, then [`Poller::wait`] for `(token, readable,
//! writable)` events — because the reactor only ever needs level-triggered
//! semantics: it re-computes each connection's interest set from its own
//! state machine after every step, so edge-triggered bookkeeping would buy
//! nothing.
//!
//! [`Waker`] is the cross-thread wakeup primitive: a nonblocking
//! `UnixStream` pair whose read end is registered like any other source,
//! so worker threads can interrupt a blocked [`Poller::wait`] by writing
//! one byte.

use std::io;
use std::os::fd::RawFd;

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or peer-closed / error — a read will resolve which).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// The sole unsafe region of the crate: FFI declarations for the four
/// epoll entry points (plus `close`) in the C library `std` already links
/// on Linux, and the calls into them. Nothing here is clever: every
/// pointer passed is derived from a live Rust slice or struct, every fd is
/// owned by the caller, and errors are read back through
/// `io::Error::last_os_error`.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: c_int = 0x80000;

    /// Mirror of the kernel's `struct epoll_event`. On x86-64 the kernel
    /// ABI packs it to 12 bytes; elsewhere it uses natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    const LOCK_EX: c_int = 2;
    const LOCK_NB: c_int = 4;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn flock(fd: c_int, operation: c_int) -> c_int;
    }

    /// Try to take a non-blocking exclusive `flock` on `fd` (the persistent
    /// decision cache's single-writer lock). `Ok(false)` means another
    /// process holds it. Advisory locks die with the owning process, so a
    /// `kill -9`'d daemon never wedges the cache directory.
    pub fn try_exclusive_lock(fd: RawFd) -> io::Result<bool> {
        loop {
            if unsafe { flock(fd, LOCK_EX | LOCK_NB) } == 0 {
                return Ok(true);
            }
            let e = io::Error::last_os_error();
            match e.kind() {
                io::ErrorKind::Interrupted => continue,
                io::ErrorKind::WouldBlock => return Ok(false),
                _ => return Err(e),
            }
        }
    }

    pub fn create() -> io::Result<RawFd> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn ctl(epfd: RawFd, op: c_int, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        let ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        if unsafe { epoll_ctl(epfd, op, fd, ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Wait for events; `timeout_ms < 0` blocks indefinitely. `EINTR`
    /// surfaces as zero events rather than an error.
    pub fn wait(epfd: RawFd, buf: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
        let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(e);
        }
        Ok(n as usize)
    }

    pub fn close_fd(fd: RawFd) {
        let _ = unsafe { close(fd) };
    }
}

#[cfg(target_os = "linux")]
pub use linux_impl::Poller;

#[cfg(target_os = "linux")]
mod linux_impl {
    use super::{sys, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// A level-triggered epoll instance (see the module docs).
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<sys::EpollEvent>,
    }

    fn interest(readable: bool, writable: bool) -> u32 {
        let mut ev = 0;
        if readable {
            // RDHUP rides along with read interest only: a source whose
            // reads are masked (reactor backpressure) must not busy-wake
            // on a half-closed peer it is not ready to hear — the hangup
            // is still pending, level-triggered, when reads re-enable,
            // and a full close reports EPOLLERR/EPOLLHUP unconditionally.
            ev |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if writable {
            ev |= sys::EPOLLOUT;
        }
        ev
    }

    impl Poller {
        /// A fresh poller able to report up to 1024 events per wait.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                epfd: sys::create()?,
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        /// Start watching `fd` under `token` for the given interest set.
        pub fn register(
            &self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            sys::ctl(
                self.epfd,
                sys::EPOLL_CTL_ADD,
                fd,
                interest(readable, writable),
                token,
            )
        }

        /// Replace the interest set of an already-registered `fd`.
        pub fn modify(
            &self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            sys::ctl(
                self.epfd,
                sys::EPOLL_CTL_MOD,
                fd,
                interest(readable, writable),
                token,
            )
        }

        /// Stop watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Progress notification from the reactor (see the fallback
        /// backend): epoll sleeps on real kernel readiness, so there is no
        /// idle backoff to reset — this is a no-op.
        pub fn note_progress(&self) {}

        /// Block until at least one event is ready or `timeout` elapses
        /// (`None` blocks indefinitely), appending events to `out`.
        pub fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let timeout_ms = match timeout {
                // Round up so a 100µs deadline cannot spin at timeout 0.
                Some(t) => t.as_millis().saturating_add(1).min(i32::MAX as u128) as i32,
                None => -1,
            };
            let n = sys::wait(self.epfd, &mut self.buf, timeout_ms)?;
            for ev in &self.buf[..n] {
                let bits = ev.events;
                // Error/hangup conditions surface as readability: the next
                // read returns 0 or the error, which is exactly how the
                // reactor's connection state machine learns about them.
                let fail = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                out.push(PollEvent {
                    token: ev.data,
                    readable: bits & sys::EPOLLIN != 0 || fail,
                    writable: bits & sys::EPOLLOUT != 0 || fail,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
pub use fallback_impl::Poller;

// Compiled under `test` on every platform so the backoff behavior below is
// exercised by the normal (Linux) CI run, not only on the platforms that
// actually fall back to it.
#[cfg(any(not(target_os = "linux"), test))]
mod fallback_impl {
    use super::PollEvent;
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    /// Shortest idle nap — the fallback's historical fixed poll period.
    const MIN_NAP: Duration = Duration::from_millis(1);
    /// Longest idle nap the backoff reaches. 64ms keeps an idle daemon
    /// under ~16 wakeups/s (versus ~1000/s at a fixed 1ms) while bounding
    /// the extra latency a request can see after a long quiet spell.
    const MAX_NAP: Duration = Duration::from_millis(64);

    /// Correctness-only fallback: every registered source is reported
    /// ready after a short sleep. Spurious readiness is harmless under
    /// nonblocking I/O; this backend polls instead of sleeping on kernel
    /// readiness, which is why the daemon defaults to the
    /// thread-per-connection loop on platforms without the epoll backend
    /// (`OOCQ_REACTOR=1` opts into the reactor over this backend anyway,
    /// e.g. for the test suite).
    ///
    /// Because the fabricated events make readiness counts meaningless,
    /// the poller cannot see idleness in its own output — so it backs off
    /// on its own (each wait doubles the nap toward [`MAX_NAP`]) and
    /// relies on [`Poller::note_progress`] from the reactor, plus any
    /// registration change, to reset to [`MIN_NAP`] when real work shows
    /// up.
    pub struct Poller {
        registered: Mutex<HashMap<RawFd, u64>>,
        idle_nap: Mutex<Duration>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(HashMap::new()),
                idle_nap: Mutex::new(MIN_NAP),
            })
        }

        pub fn register(&self, fd: RawFd, token: u64, _r: bool, _w: bool) -> io::Result<()> {
            self.registered.lock().unwrap().insert(fd, token);
            self.note_progress();
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, token: u64, _r: bool, _w: bool) -> io::Result<()> {
            self.registered.lock().unwrap().insert(fd, token);
            self.note_progress();
            Ok(())
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.registered.lock().unwrap().remove(&fd);
            self.note_progress();
            Ok(())
        }

        /// Reset the idle backoff: the reactor observed real progress
        /// (worker completions, waker bytes), so poll densely again.
        pub fn note_progress(&self) {
            *self.idle_nap.lock().unwrap() = MIN_NAP;
        }

        /// The nap the next idle [`Poller::wait`] will take (diagnostic /
        /// test aid).
        pub fn idle_nap(&self) -> Duration {
            *self.idle_nap.lock().unwrap()
        }

        pub fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let nap = {
                let mut idle = self.idle_nap.lock().unwrap();
                let nap = match timeout {
                    Some(t) => t.min(*idle),
                    None => *idle,
                };
                *idle = idle.saturating_mul(2).min(MAX_NAP);
                nap
            };
            std::thread::sleep(nap);
            for (_, &token) in self.registered.lock().unwrap().iter() {
                out.push(PollEvent {
                    token,
                    readable: true,
                    writable: true,
                });
            }
            Ok(())
        }
    }
}

/// Cross-thread wakeup for a blocked [`Poller::wait`]: a nonblocking
/// socket pair whose read end is registered under a reserved token. Worker
/// threads call [`Waker::wake`]; the reactor drains with
/// [`WakeReceiver::drain`].
#[cfg(unix)]
pub fn waker() -> io::Result<(Waker, WakeReceiver)> {
    use std::os::unix::net::UnixStream;
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

/// The writing half of the wakeup pair (cheap to clone).
#[cfg(unix)]
pub struct Waker {
    tx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl Waker {
    /// Interrupt the poller. A full pipe means a wakeup is already
    /// pending, so `WouldBlock` (and any other error) is ignored.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1]);
    }

    /// An independent handle to the same wakeup channel.
    pub fn try_clone(&self) -> io::Result<Waker> {
        Ok(Waker {
            tx: self.tx.try_clone()?,
        })
    }
}

/// The reading half of the wakeup pair, owned by the reactor.
#[cfg(unix)]
pub struct WakeReceiver {
    rx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl WakeReceiver {
    /// The fd to register with the poller.
    pub fn raw_fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Consume pending wakeup bytes so a level-triggered poller stops
    /// reporting the channel ready. Returns how many bytes were drained —
    /// nonzero means some worker really did signal since the last drain,
    /// which the reactor feeds to [`Poller::note_progress`] (the fallback
    /// poller cannot tell real readiness from its own fabricated events).
    pub fn drain(&self) -> usize {
        use std::io::Read;
        let mut total = 0;
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.rx).read(&mut buf) {
            if n == 0 {
                break;
            }
            total += n;
        }
        total
    }
}

/// Try to take the non-blocking exclusive advisory lock on `file` that
/// guards a persistent cache directory against concurrent writers.
/// `Ok(false)` means another live process holds it.
///
/// On Linux this is `flock(2)` through the [`sys`] island: the kernel
/// releases the lock when the owning process dies, however it dies, so a
/// crashed daemon never leaves the directory wedged. Elsewhere there is no
/// portable advisory lock in `std`, so the fallback grants the lock
/// whenever the marker file was newly created and treats a pre-existing
/// one as contended — a stale marker after a crash then costs one cold
/// start (the operator removes it), never corruption, because the log
/// format itself is append-only and checksummed.
pub(crate) fn try_exclusive_lock(file: &std::fs::File, newly_created: bool) -> io::Result<bool> {
    #[cfg(target_os = "linux")]
    {
        use std::os::fd::AsRawFd;
        let _ = newly_created;
        sys::try_exclusive_lock(file.as_raw_fd())
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = file;
        Ok(newly_created)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Duration;

    #[test]
    fn poller_reports_readability_and_writability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 7, true, false)
            .unwrap();

        // Nothing pending: a short wait returns no events.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7), "{events:?}");

        // A pending connection makes the listener readable.
        let mut client = TcpStream::connect(addr).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // An idle established stream is writable but not readable...
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        poller.register(server.as_raw_fd(), 9, true, true).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 9).unwrap();
        assert!(ev.writable);

        // ...and becomes readable once the peer sends bytes.
        poller.modify(server.as_raw_fd(), 9, true, false).unwrap();
        client.write_all(b"hi").unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 9 && e.readable));
        let mut buf = [0u8; 8];
        let mut server = server;
        assert_eq!(server.read(&mut buf).unwrap(), 2);
        poller.deregister(server.as_raw_fd()).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let (tx, rx) = waker().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(rx.raw_fd(), 1, true, false).unwrap();
        // Wake from a clone and keep `tx` alive: dropping the last writer
        // would hang up the pipe and leave the read end ready forever.
        let tx2 = tx.try_clone().unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            tx2.wake();
            tx2.wake(); // coalesces with the first, must not error
        });
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        handle.join().unwrap(); // both wake bytes are in the pipe now
        rx.drain();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert!(events.is_empty(), "drained waker still ready: {events:?}");
    }

    #[cfg(unix)]
    #[test]
    fn waker_drain_reports_how_many_bytes_arrived() {
        let (tx, rx) = waker().unwrap();
        assert_eq!(rx.drain(), 0);
        tx.wake();
        tx.wake();
        assert_eq!(rx.drain(), 2);
        assert_eq!(rx.drain(), 0);
    }

    /// The sleep-poll fallback must not busy-wake an idle loop: with no
    /// readiness activity each wait doubles its nap (1ms → 64ms cap), and
    /// any progress note or registration change snaps it back to 1ms.
    #[test]
    fn fallback_poller_backs_off_while_idle_and_resets_on_progress() {
        let mut poller = super::fallback_impl::Poller::new().unwrap();
        // Token under a dummy fd — the fallback never touches the fd
        // itself, it only reports what is registered.
        poller.register(0, 42, true, false).unwrap();
        assert_eq!(poller.idle_nap(), Duration::from_millis(1));

        // Six idle waits sleep 1+2+4+8+16+32 ≥ 63ms in total: the loop
        // provably sleeps rather than spinning at a fixed 1ms.
        let start = std::time::Instant::now();
        for _ in 0..6 {
            let mut events = Vec::new();
            poller.wait(&mut events, None).unwrap();
            // Correctness is preserved: registered sources still report.
            assert!(events.iter().any(|e| e.token == 42 && e.readable));
        }
        assert!(
            start.elapsed() >= Duration::from_millis(63),
            "idle waits only slept {:?}",
            start.elapsed()
        );
        assert_eq!(poller.idle_nap(), Duration::from_millis(64));

        // A caller-supplied timeout below the backoff bounds the nap.
        let start = std::time::Instant::now();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(2)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_millis(60));

        // The cap holds: napping never exceeds 64ms.
        assert_eq!(poller.idle_nap(), Duration::from_millis(64));

        // Real progress resets the backoff to dense polling…
        poller.note_progress();
        assert_eq!(poller.idle_nap(), Duration::from_millis(1));
        let mut events = Vec::new();
        poller.wait(&mut events, None).unwrap();
        assert_eq!(poller.idle_nap(), Duration::from_millis(2));

        // …and so does any registration change (new or retired source).
        poller.modify(0, 43, true, true).unwrap();
        assert_eq!(poller.idle_nap(), Duration::from_millis(1));
        let mut events = Vec::new();
        poller.wait(&mut events, None).unwrap();
        poller.deregister(0).unwrap();
        assert_eq!(poller.idle_nap(), Duration::from_millis(1));
        let mut events2 = Vec::new();
        poller.wait(&mut events2, None).unwrap();
        assert!(events2.is_empty(), "deregistered fd still reported");
    }
}

//! The shared service engine: named schema sessions, decision execution,
//! and per-request statistics.
//!
//! Sessions are immutable snapshots. `schema`/`query` commands build a new
//! [`Session`] value and swap the `Arc` in under a short write lock;
//! decision requests capture the `Arc` **at dispatch time, in input
//! order**, so a worker still computing against an old schema is unaffected
//! by a concurrent redefinition — and the response stream reads as if the
//! commands ran sequentially.

use crate::cache::CanonicalDecisionCache;
use crate::flight::{FlightKey, FlightStats};
use crate::protocol::{Request, RequestStats};
use crate::runner::run_program_with;
use oocq_core::{
    contains_terminal_with, expand, expand_satisfiable_with, satisfiability, Budget, DecisionCache,
    Engine, EngineConfig, PreparedQuery, PreparedSchema, Satisfiability,
};
use oocq_parser::{parse_program, parse_query, parse_schema};
use oocq_query::{normalize, Query, UnionQuery};
use oocq_schema::Schema;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// An immutable snapshot of one named session: a prepared schema plus the
/// prepared queries defined against it.
///
/// Holding [`PreparedSchema`]/[`PreparedQuery`] handles (rather than raw
/// values) means a named query is analyzed at most once for as long as its
/// binding lives: snapshots clone the handles (`Arc` pointer copies), so
/// analysis, terminal classes, canonical form, and branch indexes built by
/// one request are visible to every later request against any snapshot that
/// still carries the binding.
pub struct Session {
    name: String,
    schema: PreparedSchema,
    queries: HashMap<String, PreparedQuery>,
}

impl Session {
    /// The session's schema.
    pub fn schema(&self) -> &Schema {
        self.schema.schema()
    }

    /// The session's prepared schema handle.
    pub fn prepared_schema(&self) -> &PreparedSchema {
        &self.schema
    }

    pub(crate) fn query(&self, q: &str) -> Result<&PreparedQuery, String> {
        self.queries
            .get(q)
            .ok_or_else(|| format!("unknown query `{q}` in session `{}`", self.name))
    }
}

/// A per-request cache view: delegates to the shared cache (when enabled)
/// and counts hits and computed decisions for the stats suffix. A `put`
/// marks one decision the engine actually computed, so `decided` counts
/// branch-engine runs whether or not caching is on.
struct CountingView {
    inner: Option<Arc<CanonicalDecisionCache>>,
    hits: AtomicU64,
    decided: AtomicU64,
}

impl DecisionCache for CountingView {
    fn get_contains(&self, s: &Schema, q1: &Query, q2: &Query) -> Option<bool> {
        let r = self.inner.as_ref().and_then(|c| c.get_contains(s, q1, q2));
        if r.is_some() {
            self.hits.fetch_add(1, Relaxed);
        }
        r
    }

    fn put_contains(&self, s: &Schema, q1: &Query, q2: &Query, holds: bool) {
        self.decided.fetch_add(1, Relaxed);
        if let Some(c) = &self.inner {
            c.put_contains(s, q1, q2, holds);
        }
    }

    fn get_minimized(&self, s: &Schema, q: &Query) -> Option<UnionQuery> {
        let r = self.inner.as_ref().and_then(|c| c.get_minimized(s, q));
        if r.is_some() {
            self.hits.fetch_add(1, Relaxed);
        }
        r
    }

    fn put_minimized(&self, s: &Schema, q: &Query, result: &UnionQuery) {
        self.decided.fetch_add(1, Relaxed);
        if let Some(c) = &self.inner {
            c.put_minimized(s, q, result);
        }
    }

    // Forward prepared lookups to the shared cache's prepared overrides so
    // the memoized canonical forms and interned schema fingerprint are used
    // for keying (the trait defaults would fall back to this view's plain
    // methods and re-render both per lookup).

    fn get_contains_prepared(&self, p1: &PreparedQuery, p2: &PreparedQuery) -> Option<bool> {
        let r = self
            .inner
            .as_ref()
            .and_then(|c| c.get_contains_prepared(p1, p2));
        if r.is_some() {
            self.hits.fetch_add(1, Relaxed);
        }
        r
    }

    fn put_contains_prepared(&self, p1: &PreparedQuery, p2: &PreparedQuery, holds: bool) {
        self.decided.fetch_add(1, Relaxed);
        if let Some(c) = &self.inner {
            c.put_contains_prepared(p1, p2, holds);
        }
    }

    fn get_minimized_prepared(&self, p: &PreparedQuery) -> Option<UnionQuery> {
        let r = self
            .inner
            .as_ref()
            .and_then(|c| c.get_minimized_prepared(p));
        if r.is_some() {
            self.hits.fetch_add(1, Relaxed);
        }
        r
    }

    fn put_minimized_prepared(&self, p: &PreparedQuery, result: &UnionQuery) {
        self.decided.fetch_add(1, Relaxed);
        if let Some(c) = &self.inner {
            c.put_minimized_prepared(p, result);
        }
    }
}

/// The shared engine behind one `oocq-serve` process: the decision cache,
/// the base [`EngineConfig`], and the session table.
pub struct ServiceEngine {
    cache: Option<Arc<CanonicalDecisionCache>>,
    base: EngineConfig,
    sessions: RwLock<HashMap<String, Arc<Session>>>,
    /// Per-request wall-clock deadline (`OOCQ_DEADLINE_MS`); the budget's
    /// clock starts when the request begins executing, not at config time.
    deadline: Option<Duration>,
    /// Explicit job-queue bound (`OOCQ_QUEUE_BOUND`); `None` derives one
    /// from the pool size.
    queue_bound: Option<usize>,
    /// Concurrent-connection cap for the TCP paths (`OOCQ_MAX_CONNS`).
    max_conns: usize,
    /// Singleflight coalescing of identical in-flight decisions in the
    /// reactor (`OOCQ_COALESCE`, on by default).
    coalesce: bool,
}

/// Default [`ServiceEngine::max_conns`] when `OOCQ_MAX_CONNS` is unset.
pub const DEFAULT_MAX_CONNS: usize = 4096;

impl ServiceEngine {
    /// An engine with the default-capacity canonical cache.
    pub fn new(base: EngineConfig) -> ServiceEngine {
        ServiceEngine::with_cache(base, Some(Arc::new(CanonicalDecisionCache::from_env())))
    }

    /// An engine with an explicit (or no) cache.
    pub fn with_cache(
        base: EngineConfig,
        cache: Option<Arc<CanonicalDecisionCache>>,
    ) -> ServiceEngine {
        ServiceEngine {
            cache,
            base,
            sessions: RwLock::new(HashMap::new()),
            deadline: None,
            queue_bound: None,
            max_conns: DEFAULT_MAX_CONNS,
            coalesce: true,
        }
    }

    /// Configuration from the environment: `OOCQ_THREADS` for the pool
    /// size, `OOCQ_CACHE_CAPACITY` for the cache (`0` disables it),
    /// `OOCQ_CACHE_DIR`/`OOCQ_CACHE_PERSIST`/`OOCQ_CACHE_DISK_CAPACITY`
    /// for the disk-backed tier (see
    /// [`CanonicalDecisionCache::from_env`]),
    /// `OOCQ_DEADLINE_MS` for the per-request wall-clock deadline (unset or
    /// `0` means none), `OOCQ_QUEUE_BOUND` for the dispatcher queue
    /// bound (unset or `0` derives one from the pool size),
    /// `OOCQ_MAX_CONNS` for the TCP connection cap (unset or `0` keeps the
    /// default), and `OOCQ_COALESCE` (`0` disables singleflight
    /// coalescing in the reactor).
    pub fn from_env() -> ServiceEngine {
        let cache = match std::env::var("OOCQ_CACHE_CAPACITY")
            .ok()
            .as_deref()
            .map(str::trim)
        {
            Some("0") => None,
            _ => Some(Arc::new(CanonicalDecisionCache::from_env())),
        };
        let positive = |var: &str| {
            std::env::var(var)
                .ok()
                .and_then(|s| s.trim().parse::<u64>().ok())
                .filter(|&n| n > 0)
        };
        let coalesce = std::env::var("OOCQ_COALESCE")
            .map(|v| v.trim() != "0")
            .unwrap_or(true);
        ServiceEngine::with_cache(EngineConfig::from_env(), cache)
            .with_deadline(positive("OOCQ_DEADLINE_MS").map(Duration::from_millis))
            .with_queue_bound(positive("OOCQ_QUEUE_BOUND").map(|n| n as usize))
            .with_max_conns(
                positive("OOCQ_MAX_CONNS")
                    .map(|n| n as usize)
                    .unwrap_or(DEFAULT_MAX_CONNS),
            )
            .with_coalescing(coalesce)
    }

    /// This engine with a per-request wall-clock deadline (`None` = none).
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> ServiceEngine {
        self.deadline = deadline;
        self
    }

    /// This engine with an explicit dispatcher queue bound (`None` derives
    /// one from the pool size).
    pub fn with_queue_bound(mut self, bound: Option<usize>) -> ServiceEngine {
        self.queue_bound = bound;
        self
    }

    /// This engine with an explicit concurrent-connection cap.
    pub fn with_max_conns(mut self, max: usize) -> ServiceEngine {
        self.max_conns = max.max(1);
        self
    }

    /// This engine with singleflight coalescing enabled or disabled.
    pub fn with_coalescing(mut self, on: bool) -> ServiceEngine {
        self.coalesce = on;
        self
    }

    /// How many concurrent TCP connections the serving paths accept before
    /// answering `err busy` and closing.
    pub fn max_conns(&self) -> usize {
        self.max_conns
    }

    /// Is singleflight coalescing enabled for the reactor?
    pub fn coalescing(&self) -> bool {
        self.coalesce
    }

    /// The per-request wall-clock deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The worker-pool size this engine wants (`base.threads`).
    pub fn pool_threads(&self) -> usize {
        self.base.threads
    }

    /// How many decision jobs the dispatcher may queue ahead of the workers
    /// before it stops reading input (backpressure). Never zero.
    pub fn queue_bound(&self) -> usize {
        self.queue_bound
            .unwrap_or_else(|| self.pool_threads().max(1) * 16)
            .max(1)
    }

    /// The shared decision cache, if enabled.
    pub fn cache(&self) -> Option<&Arc<CanonicalDecisionCache>> {
        self.cache.as_ref()
    }

    /// Create or replace a named session from schema DSL text. Replacing a
    /// session drops its query bindings (they were resolved against the
    /// old schema's identifiers).
    pub fn define_schema(&self, session: &str, text: &str) -> Result<String, String> {
        let schema = parse_schema(text).map_err(|e| format!("parse error at {e}"))?;
        let classes = schema.class_count();
        let snapshot = Arc::new(Session {
            name: session.to_owned(),
            schema: PreparedSchema::from_arc(Arc::new(schema)),
            queries: HashMap::new(),
        });
        self.sessions
            .write()
            .unwrap()
            .insert(session.to_owned(), snapshot);
        Ok(format!("session {session}: {classes} classes"))
    }

    /// Bind (or rebind) a named query in a session — copy-on-write: the
    /// old snapshot stays valid for requests already dispatched against it.
    pub fn define_query(&self, session: &str, name: &str, text: &str) -> Result<String, String> {
        let old = self.session(session)?;
        let q =
            parse_query(old.schema.schema(), text).map_err(|e| format!("parse error at {e}"))?;
        let mut queries = old.queries.clone();
        queries.insert(name.to_owned(), PreparedQuery::new(&old.schema, q));
        let snapshot = Arc::new(Session {
            name: old.name.clone(),
            schema: old.schema.clone(),
            queries,
        });
        self.sessions
            .write()
            .unwrap()
            .insert(session.to_owned(), snapshot);
        Ok(format!("query {name} defined in session {session}"))
    }

    /// Add a declared constraint to a session's schema — copy-on-write,
    /// like [`ServiceEngine::define_query`]. The constraint is validated by
    /// re-rendering the schema with the new `constraint …;` line appended
    /// and reparsing the result; because [`Schema`]'s `Display` preserves
    /// declaration order, every class and attribute identifier is stable
    /// across the round trip, so the session's bound queries stay valid and
    /// are re-prepared against the new schema unchanged.
    pub fn define_constraint(&self, session: &str, text: &str) -> Result<String, String> {
        let old = self.session(session)?;
        let line = text.trim().trim_end_matches(';').trim_end();
        if line.is_empty() {
            return Err("empty constraint text".to_owned());
        }
        let combined = format!("{}constraint {line};\n", old.schema.schema());
        let schema = parse_schema(&combined).map_err(|e| format!("parse error at {e}"))?;
        let n = schema.constraints().len();
        let prepared = PreparedSchema::from_arc(Arc::new(schema));
        let queries = old
            .queries
            .iter()
            .map(|(name, p)| {
                (
                    name.clone(),
                    PreparedQuery::new(&prepared, p.query().clone()),
                )
            })
            .collect();
        let snapshot = Arc::new(Session {
            name: old.name.clone(),
            schema: prepared,
            queries,
        });
        self.sessions
            .write()
            .unwrap()
            .insert(session.to_owned(), snapshot);
        Ok(format!("constraint added to session {session} ({n} total)"))
    }

    /// The current snapshot of a session.
    pub fn session(&self, name: &str) -> Result<Arc<Session>, String> {
        self.sessions
            .read()
            .unwrap()
            .get(name)
            .cloned()
            .ok_or_else(|| {
                format!("unknown session `{name}` (define it with `schema {name} <text>`)")
            })
    }

    /// Capture the session snapshot a decision request should run against,
    /// in input order. `run` is self-contained and needs none.
    pub fn snapshot_for(&self, req: &Request) -> Result<Option<Arc<Session>>, String> {
        match req {
            Request::Satisfiable { session, .. }
            | Request::Contains { session, .. }
            | Request::Equivalent { session, .. }
            | Request::Explain { session, .. }
            | Request::Expand { session, .. }
            | Request::Minimize { session, .. } => self.session(session).map(Some),
            Request::Limited { inner, .. } => self.snapshot_for(inner),
            _ => Ok(None),
        }
    }

    /// The [`EngineConfig`] one decision request runs under: serial fan-out
    /// when the worker pool itself is parallel (requests are the unit of
    /// concurrency), the full branch engine otherwise.
    fn decision_config(&self, view: Arc<CountingView>) -> EngineConfig {
        let cfg = if self.base.threads > 1 {
            self.base.serial_inner()
        } else {
            self.base.clone()
        };
        cfg.with_cache(view)
    }

    /// Execute one decision request against a pre-captured snapshot.
    /// Returns the response payload (or error message) plus stats.
    ///
    /// Each execution gets a fresh [`Budget`] combining the engine-wide
    /// deadline (clock starting now) with the request's own `limit=` option,
    /// so one timed-out request never poisons the next.
    pub fn execute(
        &self,
        req: &Request,
        snapshot: Option<&Arc<Session>>,
    ) -> (Result<String, String>, RequestStats) {
        let (req, limit) = split_limit(req);
        self.execute_budgeted(req, snapshot, self.request_budget(limit))
    }

    /// The [`Budget`] one request runs under: the engine-wide deadline
    /// (clock starting now) combined with the request's `limit=` option.
    pub(crate) fn request_budget(&self, limit: Option<u64>) -> Budget {
        Budget::new(self.deadline, limit)
    }

    /// [`ServiceEngine::execute`] with the `limit=` wrapper already
    /// stripped and the budget supplied by the caller — the reactor builds
    /// the budget before deciding whether to coalesce, then runs the leader
    /// under the same (shared-counter) budget so canonicalization work done
    /// for the flight key is charged exactly once.
    pub(crate) fn execute_budgeted(
        &self,
        req: &Request,
        snapshot: Option<&Arc<Session>>,
        budget: Budget,
    ) -> (Result<String, String>, RequestStats) {
        let start = Instant::now();
        #[cfg(test)]
        panic_injection(req);
        #[cfg(test)]
        slow_injection(req);
        let view = Arc::new(CountingView {
            inner: self.cache.clone(),
            hits: AtomicU64::new(0),
            decided: AtomicU64::new(0),
        });
        let cfg = self.decision_config(view.clone()).with_budget(budget);
        let result = self.execute_inner(req, snapshot, &cfg);
        let stats = RequestStats {
            cached: view.hits.load(Relaxed),
            decided: view.decided.load(Relaxed),
            wall_us: start.elapsed().as_micros() as u64,
            threads: self.base.threads,
        };
        (result, stats)
    }

    /// The singleflight identity of a (already `limit=`-stripped) request,
    /// or `None` when it is not coalescable: only `contains`/`equiv`/
    /// `minimize` are — the other decision verbs render schema-dependent
    /// reports too cheap to be worth a table entry — and name-lookup
    /// failures return `None` so [`ServiceEngine::execute`] surfaces the
    /// real error message. `Err` carries a budget trip during
    /// canonicalization (the canonical labeling has a factorial worst case
    /// and must honor the request budget even on this pre-pass).
    pub(crate) fn flight_key(
        &self,
        req: &Request,
        snapshot: Option<&Arc<Session>>,
        budget: &Budget,
    ) -> Result<Option<FlightKey>, String> {
        let Some(ses) = snapshot else {
            return Ok(None);
        };
        let schema = ses.prepared_schema().fingerprint().clone();
        let theory = ses.schema().constraints_text().clone();
        match req {
            Request::Contains { q1, q2, .. } | Request::Equivalent { q1, q2, .. } => {
                let (Ok(p1), Ok(p2)) = (ses.query(q1), ses.query(q2)) else {
                    return Ok(None);
                };
                let c1 = p1
                    .try_canonical_form(budget)
                    .map_err(|e| e.to_string())?
                    .clone();
                let c2 = p2
                    .try_canonical_form(budget)
                    .map_err(|e| e.to_string())?
                    .clone();
                Ok(Some(if matches!(req, Request::Contains { .. }) {
                    FlightKey::Contains {
                        schema,
                        theory,
                        q1: c1,
                        q2: c2,
                    }
                } else {
                    FlightKey::Equivalent {
                        schema,
                        theory,
                        q1: c1,
                        q2: c2,
                    }
                }))
            }
            Request::Minimize { query, .. } => {
                let Ok(p) = ses.query(query) else {
                    return Ok(None);
                };
                // Exact rendered text, like the cache's minimize key: the
                // output carries the user's variable names.
                let query = p.query().display(ses.schema()).to_string();
                Ok(Some(FlightKey::Minimize {
                    schema,
                    theory,
                    query,
                }))
            }
            _ => Ok(None),
        }
    }

    /// The `stats show` report: cache traffic, coalescing traffic, and the
    /// asking connection's decision backlog.
    pub(crate) fn stats_report(&self, flight: &FlightStats, backlog: usize) -> String {
        let mut out = String::new();
        match &self.cache {
            Some(c) => {
                let s = c.stats();
                let _ = write!(
                    out,
                    "cache: contains_hits={} contains_misses={} minimize_hits={} \
                     minimize_misses={} evictions={} entries={}",
                    s.contains_hits,
                    s.contains_misses,
                    s.minimize_hits,
                    s.minimize_misses,
                    s.evictions,
                    c.len()
                );
            }
            None => out.push_str("cache: disabled"),
        }
        match self.cache.as_ref().and_then(|c| c.persist_stats()) {
            Some(p) => {
                let _ = write!(
                    out,
                    " | persist: tier2_hits={} loaded={} appended={} stale={} corrupt={} \
                     superseded={} rejected={} compactions={} entries={}",
                    p.tier2_hits,
                    p.loaded,
                    p.appended,
                    p.stale,
                    p.corrupt,
                    p.superseded,
                    p.rejected,
                    p.compactions,
                    p.entries
                );
            }
            None => out.push_str(" | persist: off"),
        }
        let _ = write!(
            out,
            " | coalesce: leaders={} waiters={} fanouts={} expired={} inflight={} \
             | conn: backlog={backlog}",
            flight.leaders, flight.waiters_joined, flight.fanouts, flight.expired, flight.inflight
        );
        let t = oocq_core::theory_stats();
        let _ = write!(
            out,
            " | theory: decisions={} rewrites={} left_unsat={} right_unsat={} chase_atoms={} \
             functional_eqs={} dead_branches={}",
            t.decisions,
            t.left_rewrites,
            t.left_unsat,
            t.right_unsat,
            t.chase_atoms,
            t.functional_eqs,
            t.dead_branches
        );
        out
    }

    fn execute_inner(
        &self,
        req: &Request,
        snapshot: Option<&Arc<Session>>,
        cfg: &EngineConfig,
    ) -> Result<String, String> {
        let core = |e: oocq_core::CoreError| e.to_string();
        let wf = |e: oocq_query::WellFormedError| e.to_string();
        let session = || snapshot.ok_or_else(|| "internal: missing session snapshot".to_owned());
        let eng = Engine::new(cfg.clone());
        match req {
            Request::Satisfiable { query, .. } => {
                let ses = session()?;
                let s = ses.schema();
                let q = ses.query(query)?.query();
                let n = normalize(q, s).map_err(wf)?;
                let u = expand(s, &n).map_err(core)?;
                // On a constrained schema a branch can be plain-satisfiable
                // yet dead under the declared constraints (every terminal
                // class one of its variables could take is disjointness-
                // eliminated); report those as UNSAT with the theory's
                // reason.
                let theory = if s.has_constraints() {
                    Some(oocq_core::ConstraintTheory::for_schema(s))
                } else {
                    None
                };
                let mut out = String::new();
                for sub in &u {
                    match satisfiability(s, sub).map_err(core)? {
                        Satisfiability::Satisfiable => {
                            let dead = match &theory {
                                Some(t) => {
                                    use oocq_core::Theory as _;
                                    match t
                                        .compile(s, oocq_core::Side::Right, sub, &cfg.budget)
                                        .map_err(core)?
                                    {
                                        oocq_core::Compiled::Unsatisfiable(reason) => Some(reason),
                                        _ => None,
                                    }
                                }
                                None => None,
                            };
                            match dead {
                                Some(reason) => {
                                    let _ = writeln!(out, "UNSAT {} ({reason})", sub.display(s));
                                }
                                None => {
                                    let _ = writeln!(out, "SAT   {}", sub.display(s));
                                }
                            }
                        }
                        Satisfiability::Unsatisfiable(reason) => {
                            let _ = writeln!(out, "UNSAT {} ({reason})", sub.display(s));
                        }
                    }
                }
                Ok(out.trim_end().to_owned())
            }
            Request::Contains { q1, q2, .. } => {
                let ses = session()?;
                let holds = eng.dispatch(ses.query(q1)?, ses.query(q2)?).map_err(core)?;
                Ok(if holds { "holds" } else { "FAILS" }.to_owned())
            }
            Request::Equivalent { q1, q2, .. } => {
                let ses = session()?;
                let (pa, pb) = (ses.query(q1)?, ses.query(q2)?);
                let holds =
                    eng.dispatch(pa, pb).map_err(core)? && eng.dispatch(pb, pa).map_err(core)?;
                Ok(if holds { "holds" } else { "FAILS" }.to_owned())
            }
            Request::Explain { q1, q2, .. } => {
                let ses = session()?;
                let (pa, pb) = (ses.query(q1)?, ses.query(q2)?);
                let (s, qa, qb) = (ses.schema(), pa.query(), pb.query());
                if qa.is_terminal(s) && qb.is_terminal(s) {
                    let proof = eng.decide(pa, pb).map_err(core)?;
                    // Under a constraint theory the decision ran against the
                    // *compiled* left query (chase atoms, merged members), so
                    // witnesses reference its variables; recompute it for the
                    // rendering.
                    let qa_c = oocq_core::compiled_left(s, qa, cfg).map_err(core)?;
                    Ok(proof.render(s, &qa_c, qb).trim_end().to_owned())
                } else {
                    let ua = expand_satisfiable_with(s, &normalize(qa, s).map_err(wf)?, cfg)
                        .map_err(core)?;
                    let ub = expand_satisfiable_with(s, &normalize(qb, s).map_err(wf)?, cfg)
                        .map_err(core)?;
                    let mut out = String::new();
                    if ua.is_empty() {
                        let _ = writeln!(
                            out,
                            "holds vacuously: every branch of {q1} is unsatisfiable"
                        );
                    }
                    for sub in &ua {
                        let mut covered = false;
                        for p in &ub {
                            if contains_terminal_with(s, sub, p, cfg).map_err(core)? {
                                covered = true;
                                break;
                            }
                        }
                        let _ = writeln!(
                            out,
                            "{} {}",
                            if covered { "covered " } else { "UNCOVERED" },
                            sub.display(s)
                        );
                    }
                    Ok(out.trim_end().to_owned())
                }
            }
            Request::Expand { query, .. } => {
                let ses = session()?;
                let s = ses.schema();
                let q = ses.query(query)?.query();
                let u = expand(s, &normalize(q, s).map_err(wf)?).map_err(core)?;
                let mut out = format!("{} branches", u.len());
                for sub in &u {
                    let _ = write!(out, "\n  {}", sub.display(s));
                }
                Ok(out)
            }
            Request::Minimize { query, .. } => {
                let ses = session()?;
                let s = ses.schema();
                let m = eng.minimize(ses.query(query)?).map_err(core)?;
                if m.is_empty() {
                    return Ok("(unsatisfiable: empty union)".to_owned());
                }
                let lines: Vec<String> = m
                    .queries()
                    .iter()
                    .map(|sub| sub.display(s).to_string())
                    .collect();
                Ok(lines.join("\n"))
            }
            Request::Run { text } => {
                let program = parse_program(text).map_err(|e| format!("parse error at {e}"))?;
                run_program_with(&program, cfg).map_err(core)
            }
            other => Err(format!("internal: `{other:?}` is not a decision request")),
        }
    }
}

/// Strip a `limit=` wrapper, returning the inner request and the limit.
pub(crate) fn split_limit(req: &Request) -> (&Request, Option<u64>) {
    match req {
        Request::Limited { limit, inner } => (inner.as_ref(), Some(*limit)),
        other => (other, None),
    }
}

/// Test-only failure injection: a `contains` whose left query name is
/// `__panic__` panics inside `execute`, letting the server tests exercise
/// worker panic isolation without a release-build backdoor.
#[cfg(test)]
fn panic_injection(req: &Request) {
    if let Request::Contains { q1, .. } = req {
        assert!(q1 != "__panic__", "injected worker panic");
    }
}

/// Test-only latency injection: a `contains` whose left query name is
/// `__slow__` sleeps before deciding. The reactor's coalescing test uses
/// this to hold its leader in flight long enough that every concurrent
/// identical request deterministically joins as a waiter, so the test can
/// pin *exactly one* computation without racing worker scheduling.
#[cfg(test)]
fn slow_injection(req: &Request) {
    if let Request::Contains { q1, .. } = req {
        if q1 == "__slow__" {
            std::thread::sleep(Duration::from_millis(1000));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn engine() -> ServiceEngine {
        ServiceEngine::with_cache(
            EngineConfig::serial(),
            Some(Arc::new(CanonicalDecisionCache::new(256))),
        )
    }

    fn decide(e: &ServiceEngine, line: &str) -> Result<String, String> {
        let req = parse_request(line).unwrap();
        let snap = e.snapshot_for(&req)?;
        e.execute(&req, snap.as_ref()).0
    }

    #[test]
    fn schema_query_contains_round_trip() {
        let e = engine();
        e.define_schema("s", "class C {}").unwrap();
        e.define_query("s", "Q", "{ x | x in C }").unwrap();
        assert_eq!(decide(&e, "contains s Q Q"), Ok("holds".to_owned()));
        assert_eq!(decide(&e, "equiv s Q Q"), Ok("holds".to_owned()));
        assert_eq!(
            decide(&e, "satisfiable s Q"),
            Ok("SAT   { x | x in C }".to_owned())
        );
        assert_eq!(decide(&e, "minimize s Q"), Ok("{ x | x in C }".to_owned()));
        assert!(decide(&e, "expand s Q").unwrap().starts_with("1 branches"));
    }

    #[test]
    fn unknown_sessions_and_queries_are_reported() {
        let e = engine();
        assert!(decide(&e, "contains nope A B")
            .unwrap_err()
            .contains("unknown session"));
        e.define_schema("s", "class C {}").unwrap();
        assert!(decide(&e, "contains s A B")
            .unwrap_err()
            .contains("unknown query `A`"));
        assert!(e
            .define_query("s", "Q", "{ x | x in Missing }")
            .unwrap_err()
            .contains("parse error"));
        assert!(e.define_schema("t", "class {").is_err());
    }

    #[test]
    fn redefining_a_schema_drops_stale_query_bindings() {
        let e = engine();
        e.define_schema("s", "class C {}").unwrap();
        e.define_query("s", "Q", "{ x | x in C }").unwrap();
        // Old snapshots stay usable by in-flight requests.
        let old = e.session("s").unwrap();
        e.define_schema("s", "class D {}").unwrap();
        assert!(old.query("Q").is_ok());
        assert!(e.session("s").unwrap().query("Q").is_err());
    }

    #[test]
    fn constraint_verb_flips_a_verdict_and_keeps_query_bindings() {
        let e = engine();
        e.define_schema(
            "s",
            "class P {} class Q {} class B {} class T1 : B {} class T2 : B, P, Q {}",
        )
        .unwrap();
        e.define_query("s", "Q1", "{ x | x in B }").unwrap();
        e.define_query("s", "Q2", "{ x | x in T1 }").unwrap();
        e.define_query("s", "D", "{ x | x in T2 }").unwrap();
        // Plainly false: the T2 branch of Q1 escapes Q2.
        assert_eq!(decide(&e, "contains s Q1 Q2"), Ok("FAILS".to_owned()));
        assert!(decide(&e, "satisfiable s D").unwrap().starts_with("SAT"));

        // The protocol verb parses to the engine method the servers route.
        let req = parse_request("constraint s disjoint P Q").unwrap();
        let Request::DefineConstraint { session, text } = req else {
            panic!("wrong parse: {req:?}");
        };
        let msg = e.define_constraint(&session, &text).unwrap();
        assert!(msg.contains("1 total"), "{msg}");
        // Bound queries survived the copy-on-write schema swap, and the
        // constraint kills T2: containment flips, and the T2-range query is
        // now reported dead by `satisfiable`.
        assert_eq!(decide(&e, "contains s Q1 Q2"), Ok("holds".to_owned()));
        let sat = decide(&e, "satisfiable s D").unwrap();
        assert!(
            sat.starts_with("UNSAT") && sat.contains("disjointness"),
            "{sat}"
        );
        // Every expansion branch of Q1 is now covered (T2's vacuously).
        let proof = decide(&e, "explain s Q1 Q2").unwrap();
        assert!(!proof.contains("UNCOVERED"), "{proof}");
        // Terminal pairs take the certificate path (rendered against the
        // theory-compiled left query), and still decide under the theory.
        let cert = decide(&e, "explain s Q2 Q2").unwrap();
        assert!(cert.contains("holds"), "{cert}");
        // A trailing semicolon is tolerated but a duplicate declaration is
        // rejected; garbage and empty text are errors too.
        assert!(e.define_constraint("s", "disjoint P Q;").is_err());
        assert!(e.define_constraint("s", "nonsense P Q").is_err());
        assert!(e.define_constraint("s", "   ").is_err());
    }

    #[test]
    fn stats_report_includes_theory_counters() {
        let e = engine();
        let report = e.stats_report(&FlightStats::default(), 0);
        assert!(report.contains("theory: decisions="), "{report}");
        assert!(report.contains("dead_branches="), "{report}");
        // Memory-only cache: the persistence section says so explicitly.
        assert!(report.contains("| persist: off"), "{report}");
    }

    #[test]
    fn stats_report_shows_persistence_counters_when_active() {
        let dir = std::env::temp_dir().join(format!("oocq-engine-{}-stats", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CanonicalDecisionCache::with_persistence(64, &dir, 64).unwrap();
        let e = ServiceEngine::with_cache(EngineConfig::serial(), Some(Arc::new(cache)));
        e.define_schema("s", "class C {}").unwrap();
        e.define_query("s", "Q", "{ x | x in C }").unwrap();
        decide(&e, "contains s Q Q").unwrap();
        let report = e.stats_report(&FlightStats::default(), 0);
        assert!(report.contains("persist: tier2_hits=0"), "{report}");
        assert!(report.contains("appended=1"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_requests_need_no_session() {
        let e = engine();
        let out = decide(
            &e,
            "run schema { class C {} } query Q = { x | x in C } check Q <= Q",
        )
        .unwrap();
        assert!(out.contains("check Q <= Q: holds"));
    }

    /// A session whose `Big ⊆ R` check holds only after walking 2^12
    /// membership-subset branches (see the core `explosion_pair` tests):
    /// no early refutation, no size-guard trip — only a budget stops it.
    /// The inequality chain keeps the candidates asymmetric so the cache's
    /// canonical labeling stays cheap and this fixture measures the branch
    /// walk alone (the labeling's own factorial regime is budgeted too —
    /// see `limit_option_bounds_the_canonical_labeling_backtracking`).
    fn explosion_session(e: &ServiceEngine) {
        e.define_schema("s", "class T1 {}\nclass T2 { A: {T1}; }")
            .unwrap();
        let vars: Vec<String> = (1..=12).map(|i| format!("x{i}")).collect();
        let chain: String = vars
            .windows(2)
            .map(|w| format!(" & {} != {}", w[0], w[1]))
            .collect();
        let big = format!(
            "{{ x0 | exists {}, z, y: x0 in T1{}{chain} & z in T1 & y in T2 & x0 in y.A & z not in y.A }}",
            vars.join(", "),
            vars.iter()
                .map(|v| format!(" & {v} in T1"))
                .collect::<String>()
        );
        e.define_query("s", "Big", &big).unwrap();
        e.define_query(
            "s",
            "R",
            "{ x | exists u, y: x in T1 & u in T1 & y in T2 & u not in y.A }",
        )
        .unwrap();
    }

    #[test]
    fn limit_option_times_out_one_request_without_poisoning_the_next() {
        let e = engine();
        explosion_session(&e);
        let err = decide(&e, "limit=50 contains s Big R").unwrap_err();
        assert!(err.starts_with("timeout"), "{err}");
        // The budget was scoped to that request; the same engine still
        // decides, and an unlimited run of the same check completes.
        assert_eq!(decide(&e, "contains s R R"), Ok("holds".to_owned()));
    }

    /// The DESIGN.md §8 residual risk, now closed: an all-symmetric query
    /// sends the cache's canonical labeling into its factorial regime
    /// (10 interchangeable spokes = 10! orderings), and the labeling runs
    /// *before* the branch walk — so it must charge the same request budget
    /// and trip `err timeout` instead of hanging the worker.
    #[test]
    fn limit_option_bounds_the_canonical_labeling_backtracking() {
        let e = engine();
        e.define_schema("s", "class T1 {}\nclass T2 { A: {T1}; }")
            .unwrap();
        let vars: Vec<String> = (1..=10).map(|i| format!("m{i}")).collect();
        let body: String = vars
            .iter()
            .map(|v| format!(" & {v} in T1 & {v} in o.A"))
            .collect();
        let star = format!("{{ o | exists {}: o in T2{body} }}", vars.join(", "));
        e.define_query("s", "Star", &star).unwrap();
        e.define_query("s", "Small", "{ x | x in T1 }").unwrap();
        let err = decide(&e, "limit=1000 contains s Star Star").unwrap_err();
        assert!(err.starts_with("timeout"), "{err}");
        // The budget was scoped to that request; the worker still serves.
        assert_eq!(decide(&e, "contains s Small Small"), Ok("holds".to_owned()));
    }

    #[test]
    fn engine_deadline_applies_to_every_decision_request() {
        let e = engine().with_deadline(Some(Duration::from_millis(40)));
        explosion_session(&e);
        let start = Instant::now();
        let err = decide(&e, "contains s Big R").unwrap_err();
        assert!(err.starts_with("timeout"), "{err}");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "deadline must bound wall time"
        );
        // Cheap requests still fit inside the deadline.
        assert_eq!(decide(&e, "contains s R R"), Ok("holds".to_owned()));
    }

    #[test]
    fn stats_count_cache_hits_and_decisions() {
        let e = engine();
        e.define_schema("s", "class C {}").unwrap();
        e.define_query("s", "Q", "{ x | exists y: x in C & y in C & x != y }")
            .unwrap();
        let req = parse_request("contains s Q Q").unwrap();
        let snap = e.snapshot_for(&req).unwrap();
        let (r1, st1) = e.execute(&req, snap.as_ref());
        assert_eq!(r1, Ok("holds".to_owned()));
        assert!(st1.decided >= 1, "cold run must compute: {st1:?}");
        assert_eq!(st1.cached, 0);
        let (r2, st2) = e.execute(&req, snap.as_ref());
        assert_eq!(r2, r1);
        assert!(st2.cached >= 1, "warm run must hit: {st2:?}");
        assert_eq!(st2.decided, 0);
    }
}

//! The on-disk record format of the persistent decision cache.
//!
//! [`crate::CanonicalDecisionCache`] optionally keeps a **second tier**
//! behind its in-memory LRU: an append-only log of containment verdicts,
//! one self-delimiting record per `(engine version, schema fingerprint,
//! theory fingerprint, canonical Q₁, canonical Q₂) → holds` fact. This
//! module owns everything byte-shaped about that tier — framing, checksums,
//! crash-tolerant scanning, compaction rewrites, and the single-writer
//! directory lock — while the cache itself (in [`crate::cache`]) owns the
//! keys, the lookup semantics, and the policy of when to append or compact.
//!
//! ## Frame format
//!
//! ```text
//! record  := MAGIC(4) payload_len:u32le payload fnv1a64(payload):u64le
//! payload := version:u32le holds:u8
//!            len:u32le schema-fingerprint-utf8
//!            len:u32le theory-fingerprint-utf8
//!            len:u32le canonical-q1-wire
//!            len:u32le canonical-q2-wire
//! ```
//!
//! Every component is a stable, Display-pinned string: the schema and
//! theory fingerprints are the exact texts the cache already interns, and
//! the canonical queries use [`CanonicalQuery::to_wire`]. Records are
//! appended with a **single `write_all`**, so a crash mid-append leaves at
//! most one truncated frame at the tail.
//!
//! ## Recovery
//!
//! [`scan_log`] never fails and never panics: it walks the bytes looking
//! for `MAGIC`, validates the length and FNV-1a checksum, and on any
//! mismatch slides forward one byte and resynchronizes on the next magic.
//! A truncated tail, a corrupted run, or garbage prepended by a confused
//! operator all degrade to "some records skipped, the rest load" — the
//! skipped spans are counted so the cache can report them and schedule a
//! compaction, which rewrites the log from the live index (tmp file +
//! atomic rename).

use std::fs::File;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Frame marker. Also the resynchronization anchor after a corrupt span.
const MAGIC: [u8; 4] = *b"OCQ\n";

/// Upper bound on a single record's payload. Fingerprints and canonical
/// forms are a few KiB at most in any real workload; a length field beyond
/// this is treated as corruption rather than an instruction to allocate.
const MAX_PAYLOAD: usize = 1 << 24;

/// File name of the verdict log inside the cache directory.
pub(crate) const LOG_NAME: &str = "decisions.log";

/// File name of the single-writer lock marker inside the cache directory.
pub(crate) const LOCK_NAME: &str = "lock";

/// One decoded verdict record, in the string-shaped form the log stores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Record {
    /// `ENGINE_CACHE_VERSION` the verdict was computed under.
    pub version: u32,
    /// Full rendered schema description (the tier-1 fingerprint).
    pub schema: String,
    /// Rendered constraint block (the theory fingerprint).
    pub theory: String,
    /// `CanonicalQuery::to_wire` of the left query.
    pub q1: String,
    /// `CanonicalQuery::to_wire` of the right query.
    pub q2: String,
    /// The verdict — negative results are records too, they are exactly as
    /// expensive to recompute.
    pub holds: bool,
}

/// 64-bit FNV-1a over the payload. Not cryptographic — it guards against
/// torn writes and bit rot, not adversaries (the cache directory is as
/// trusted as the binary itself).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encode one record as a complete frame (magic + length + payload +
/// checksum), ready for a single atomic-enough `write_all`.
pub(crate) fn encode_record(rec: &Record) -> Vec<u8> {
    let mut payload =
        Vec::with_capacity(16 + rec.schema.len() + rec.theory.len() + rec.q1.len() + rec.q2.len());
    payload.extend_from_slice(&rec.version.to_le_bytes());
    payload.push(u8::from(rec.holds));
    push_str(&mut payload, &rec.schema);
    push_str(&mut payload, &rec.theory);
    push_str(&mut payload, &rec.q1);
    push_str(&mut payload, &rec.q2);
    let mut frame = Vec::with_capacity(MAGIC.len() + 12 + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    frame
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let v = u32::from_le_bytes(bytes.get(*pos..*pos + 4)?.try_into().ok()?);
    *pos += 4;
    Some(v)
}

fn read_str(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = read_u32(bytes, pos)? as usize;
    let s = std::str::from_utf8(bytes.get(*pos..*pos + len)?).ok()?;
    *pos += len;
    Some(s.to_owned())
}

/// Decode the payload of one frame (past magic + length, before checksum).
fn decode_payload(payload: &[u8]) -> Option<Record> {
    let mut pos = 0;
    let version = read_u32(payload, &mut pos)?;
    let holds = match payload.get(pos)? {
        0 => false,
        1 => true,
        _ => return None,
    };
    pos += 1;
    let rec = Record {
        version,
        holds,
        schema: read_str(payload, &mut pos)?,
        theory: read_str(payload, &mut pos)?,
        q1: read_str(payload, &mut pos)?,
        q2: read_str(payload, &mut pos)?,
    };
    (pos == payload.len()).then_some(rec)
}

/// What a full-log scan found besides the live records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct ScanReport {
    /// Contiguous corrupt spans skipped (bad magic runs, checksum
    /// failures, truncated tails, undecodable payloads). One span may hide
    /// any number of destroyed records; the count is a health signal, not
    /// an inventory.
    pub corrupt_spans: u64,
}

/// Scan a log image, recovering every intact record in append order.
/// Infallible by design: anything unreadable is skipped and counted.
pub(crate) fn scan_log(bytes: &[u8]) -> (Vec<Record>, ScanReport) {
    let mut records = Vec::new();
    let mut report = ScanReport::default();
    let mut pos = 0;
    let mut in_corrupt_span = false;
    while pos < bytes.len() {
        let frame_ok = (|| -> Option<(Record, usize)> {
            if bytes.get(pos..pos + MAGIC.len())? != MAGIC {
                return None;
            }
            let mut p = pos + MAGIC.len();
            let len = read_u32(bytes, &mut p)? as usize;
            if len > MAX_PAYLOAD {
                return None;
            }
            let payload = bytes.get(p..p + len)?;
            p += len;
            let sum = u64::from_le_bytes(bytes.get(p..p + 8)?.try_into().ok()?);
            p += 8;
            if fnv1a64(payload) != sum {
                return None;
            }
            Some((decode_payload(payload)?, p))
        })();
        match frame_ok {
            Some((rec, next)) => {
                records.push(rec);
                pos = next;
                in_corrupt_span = false;
            }
            None => {
                // Slide one byte and resync on the next magic; count each
                // contiguous bad run once.
                if !in_corrupt_span {
                    report.corrupt_spans += 1;
                    in_corrupt_span = true;
                }
                pos += 1;
            }
        }
    }
    (records, report)
}

/// The append handle for a verdict log: owns the open file and knows how
/// to rewrite it in place (compaction).
pub(crate) struct LogWriter {
    file: File,
    path: PathBuf,
}

impl LogWriter {
    /// Open (creating if absent) the log at `path` for appending.
    pub fn open(path: &Path) -> io::Result<LogWriter> {
        let file = File::options().append(true).create(true).open(path)?;
        Ok(LogWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Append one record as a single `write_all` — a crash mid-call leaves
    /// a truncated tail frame that [`scan_log`] skips.
    pub fn append(&mut self, rec: &Record) -> io::Result<()> {
        self.file.write_all(&encode_record(rec))
    }

    /// Rewrite the log to exactly `records` (compaction): write a sibling
    /// temporary file, fsync it, atomically rename it over the log, and
    /// reopen the append handle. On any failure the original log is left
    /// untouched (the rename is the commit point).
    pub fn rewrite(&mut self, records: impl Iterator<Item = Record>) -> io::Result<()> {
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut f = File::create(&tmp)?;
            for rec in records {
                f.write_all(&encode_record(&rec))?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        self.file = File::options().append(true).open(&self.path)?;
        Ok(())
    }
}

/// The held single-writer lock on a cache directory. On Linux the flock
/// lives exactly as long as this handle's file (or the owning process);
/// on other platforms the marker file is removed on drop, best-effort.
pub(crate) struct DirLock {
    _file: File,
    #[cfg(not(target_os = "linux"))]
    path: PathBuf,
}

#[cfg(not(target_os = "linux"))]
impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Acquire the single-writer lock for `dir`. `Ok(None)` means another
/// writer holds it — the caller degrades to a memory-only cache; it never
/// corrupts the other writer's log.
pub(crate) fn acquire_dir_lock(dir: &Path) -> io::Result<Option<DirLock>> {
    let path = dir.join(LOCK_NAME);
    let (file, created) = match File::options().write(true).create_new(true).open(&path) {
        Ok(f) => (f, true),
        Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
            (File::options().write(true).open(&path)?, false)
        }
        Err(e) => return Err(e),
    };
    if !crate::poll::try_exclusive_lock(&file, created)? {
        return Ok(None);
    }
    Ok(Some(DirLock {
        _file: file,
        #[cfg(not(target_os = "linux"))]
        path,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u32, holds: bool) -> Record {
        Record {
            version: 2,
            schema: format!("class C{i} {{}}\n"),
            theory: String::new(),
            q1: format!("v1;r0:{i}"),
            q2: "v1".to_owned(),
            holds,
        }
    }

    #[test]
    fn records_round_trip_through_the_frame_codec() {
        let recs: Vec<Record> = (0..5).map(|i| sample(i, i % 2 == 0)).collect();
        let mut log = Vec::new();
        for r in &recs {
            log.extend_from_slice(&encode_record(r));
        }
        let (back, report) = scan_log(&log);
        assert_eq!(back, recs);
        assert_eq!(report.corrupt_spans, 0);
    }

    #[test]
    fn a_truncated_tail_loses_only_the_last_record() {
        let recs: Vec<Record> = (0..4).map(|i| sample(i, true)).collect();
        let mut log = Vec::new();
        let mut offsets = Vec::new();
        for r in &recs {
            offsets.push(log.len());
            log.extend_from_slice(&encode_record(r));
        }
        // Cut mid-way through the final frame, as a crash during the last
        // append would.
        log.truncate(offsets[3] + 9);
        let (back, report) = scan_log(&log);
        assert_eq!(back, recs[..3]);
        assert_eq!(report.corrupt_spans, 1);
    }

    #[test]
    fn a_checksum_failure_skips_one_record_and_resyncs() {
        let recs: Vec<Record> = (0..4).map(|i| sample(i, true)).collect();
        let mut log = Vec::new();
        let mut offsets = Vec::new();
        for r in &recs {
            offsets.push(log.len());
            log.extend_from_slice(&encode_record(r));
        }
        // Flip one payload byte inside record 1.
        log[offsets[1] + MAGIC.len() + 4 + 2] ^= 0xff;
        let (back, report) = scan_log(&log);
        assert_eq!(back.len(), 3, "{back:?}");
        assert_eq!(back[0], recs[0]);
        assert_eq!(back[1], recs[2]);
        assert_eq!(back[2], recs[3]);
        assert_eq!(report.corrupt_spans, 1);
    }

    #[test]
    fn garbage_prefixes_and_interludes_are_skipped() {
        let mut log = b"not a log at all ".to_vec();
        log.extend_from_slice(&encode_record(&sample(0, true)));
        log.extend_from_slice(b"OCQ"); // a teasing partial magic
        log.extend_from_slice(&encode_record(&sample(1, false)));
        let (back, report) = scan_log(&log);
        assert_eq!(back.len(), 2);
        assert!(!back[1].holds);
        assert_eq!(report.corrupt_spans, 2);
    }

    #[test]
    fn an_absurd_length_field_is_corruption_not_an_allocation() {
        let mut log = MAGIC.to_vec();
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&encode_record(&sample(7, true)));
        let (back, report) = scan_log(&log);
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].schema, sample(7, true).schema);
        assert_eq!(report.corrupt_spans, 1);
    }

    #[test]
    fn empty_and_pure_garbage_logs_scan_to_nothing() {
        assert_eq!(scan_log(&[]).0.len(), 0);
        let (recs, report) = scan_log(&vec![0xabu8; 4096]);
        assert!(recs.is_empty());
        assert_eq!(report.corrupt_spans, 1);
    }

    #[test]
    fn writer_appends_and_rewrites_atomically() {
        let dir = std::env::temp_dir().join(format!("oocq-persist-{}-writer", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(LOG_NAME);
        let mut w = LogWriter::open(&path).unwrap();
        for i in 0..6 {
            w.append(&sample(i, true)).unwrap();
        }
        let (recs, _) = scan_log(&std::fs::read(&path).unwrap());
        assert_eq!(recs.len(), 6);
        // Compaction rewrites to the surviving subset only.
        w.rewrite((0..2).map(|i| sample(i, false))).unwrap();
        let (recs, report) = scan_log(&std::fs::read(&path).unwrap());
        assert_eq!(recs.len(), 2);
        assert_eq!(report.corrupt_spans, 0);
        assert!(!recs[0].holds);
        // The append handle survived the rename.
        w.append(&sample(9, true)).unwrap();
        let (recs, _) = scan_log(&std::fs::read(&path).unwrap());
        assert_eq!(recs.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_lock_excludes_a_second_writer() {
        let dir = std::env::temp_dir().join(format!("oocq-persist-{}-lock", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let first = acquire_dir_lock(&dir).unwrap();
        assert!(first.is_some());
        // Second writer in the same (or any) process is refused, not hung.
        let second = acquire_dir_lock(&dir).unwrap();
        assert!(second.is_none(), "lock must be exclusive");
        drop(first);
        // On Linux the flock dies with the handle; elsewhere the marker is
        // removed on drop — either way the lock is reacquirable.
        let third = acquire_dir_lock(&dir).unwrap();
        assert!(third.is_some(), "lock must be reacquirable after release");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

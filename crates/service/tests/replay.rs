//! Corpus replay through the daemon protocol, in-process.
//!
//! Every workbench program in the repo's `tests/corpus/` is sent through
//! [`oocq_service::serve`] as a `run` request and the response payload is
//! compared **byte-identically** against the committed `.expected`
//! transcript — across worker-pool sizes (1 vs 8), cache states (cold vs
//! warm vs disabled), and repeated replays on one engine. This pins the
//! service's determinism contract: neither the thread pool nor the
//! decision cache may change a single output byte.

use oocq_core::EngineConfig;
use oocq_service::{escape, unescape, CanonicalDecisionCache, ServiceEngine};
use std::path::PathBuf;
use std::sync::Arc;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

fn corpus() -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    for name in [
        "inequalities",
        "n1_partition",
        "paths",
        "university",
        "vehicle_rental",
    ] {
        let dir = corpus_dir();
        let program = std::fs::read_to_string(dir.join(format!("{name}.oocq")))
            .unwrap_or_else(|e| panic!("missing corpus program {name}: {e}"));
        let expected = std::fs::read_to_string(dir.join(format!("{name}.expected")))
            .unwrap_or_else(|e| panic!("missing {name}.expected: {e}"));
        out.push((name.to_owned(), program, expected));
    }
    out
}

/// Replay the whole corpus as one protocol conversation and return the
/// unescaped transcript payload of each `run` response, in order.
fn replay(engine: &ServiceEngine, programs: &[(String, String, String)]) -> Vec<String> {
    let mut input = String::from("stats off\n");
    for (_, program, _) in programs {
        input.push_str("run ");
        input.push_str(&escape(program));
        input.push('\n');
    }
    input.push_str("quit\n");
    let mut out = Vec::new();
    oocq_service::serve(input.as_bytes(), &mut out, engine).unwrap();
    let text = String::from_utf8(out).unwrap();
    let mut payloads = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let prefix = format!("[{i}] ");
        assert!(line.starts_with(&prefix), "out-of-order response: {line}");
        let body = &line[prefix.len()..];
        if i == 0 || i == programs.len() + 1 {
            continue; // `stats off` ack and `bye`
        }
        let payload = body
            .strip_prefix("ok ")
            .unwrap_or_else(|| panic!("run request failed: {body}"));
        payloads.push(unescape(payload));
    }
    assert_eq!(payloads.len(), programs.len());
    payloads
}

fn engine(threads: usize, cache: bool) -> ServiceEngine {
    let cache = cache.then(|| Arc::new(CanonicalDecisionCache::new(4096)));
    ServiceEngine::with_cache(EngineConfig::with_threads(threads), cache)
}

#[test]
fn corpus_replay_matches_golden_transcripts() {
    let programs = corpus();
    let payloads = replay(&engine(1, true), &programs);
    for ((name, _, expected), got) in programs.iter().zip(&payloads) {
        assert_eq!(
            got, expected,
            "transcript drift for {name} through the daemon"
        );
    }
}

#[test]
fn corpus_replay_is_identical_across_thread_counts() {
    let programs = corpus();
    let serial = replay(&engine(1, true), &programs);
    let pooled = replay(&engine(8, true), &programs);
    assert_eq!(serial, pooled, "OOCQ_THREADS must not change output bytes");
}

#[test]
fn corpus_replay_is_identical_cold_and_warm() {
    let programs = corpus();
    let e = engine(4, true);
    let cold = replay(&e, &programs);
    let warm = replay(&e, &programs);
    assert_eq!(cold, warm, "a warm cache must not change output bytes");
    let stats = e.cache().unwrap().stats();
    assert!(
        stats.contains_hits + stats.minimize_hits > 0,
        "the warm replay should actually hit the cache: {stats:?}"
    );
}

#[test]
fn corpus_replay_is_identical_with_cache_disabled() {
    let programs = corpus();
    let cached = replay(&engine(2, true), &programs);
    let uncached = replay(&engine(2, false), &programs);
    assert_eq!(cached, uncached, "the cache must be decision-invisible");
}

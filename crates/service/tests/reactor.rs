//! TCP integration tests for the event-driven serving reactor.
//!
//! These drive the real socket paths — [`oocq_service::reactor::run`] and
//! the legacy thread-per-connection [`oocq_service::accept_loop`]
//! (`OOCQ_REACTOR=0`) — with hundreds of concurrent pipelined clients and
//! pin the determinism contract at the transport level: every connection's
//! transcript must be byte-identical to the in-process [`serve`] loop on
//! the same input, across serving modes and worker-pool sizes.

use oocq_core::EngineConfig;
use oocq_service::{accept_loop, escape, CanonicalDecisionCache, ServiceEngine};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;

fn engine(threads: usize) -> ServiceEngine {
    ServiceEngine::with_cache(
        EngineConfig::with_threads(threads),
        Some(Arc::new(CanonicalDecisionCache::new(4096))),
    )
}

/// A serving-mode-agnostic server handle: stops and joins on drop.
struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Server {
    fn start(engine: ServiceEngine, reactor: bool) -> Server {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            if reactor {
                oocq_service::reactor::run(&listener, &engine, &stop2)
            } else {
                accept_loop(&listener, &engine, &stop2)
            }
        });
        Server {
            addr,
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, SeqCst);
        if let Some(h) = self.handle.take() {
            h.join().unwrap().unwrap();
        }
    }
}

/// Pipeline a whole session over one connection and collect the reply.
fn exchange(addr: SocketAddr, input: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(input.as_bytes()).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

/// The five corpus programs as `run` sessions, plus their expected
/// transcripts computed through the in-process [`serve`] reference.
fn sessions() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let reference = engine(1);
    let mut out = Vec::new();
    for name in [
        "inequalities",
        "n1_partition",
        "paths",
        "university",
        "vehicle_rental",
    ] {
        let program = std::fs::read_to_string(dir.join(format!("{name}.oocq")))
            .unwrap_or_else(|e| panic!("missing corpus program {name}: {e}"));
        let input = format!("stats off\nrun {}\nquit\n", escape(&program));
        let mut expected = Vec::new();
        oocq_service::serve(input.as_bytes(), &mut expected, &reference).unwrap();
        out.push((input, String::from_utf8(expected).unwrap()));
    }
    out
}

/// Fan `n` concurrent clients (cycling through the sessions) at `addr`
/// and return each connection's transcript alongside its expectation.
fn storm(addr: SocketAddr, sessions: &[(String, String)], n: usize) -> Vec<(String, String)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let (input, expected) = &sessions[i % sessions.len()];
                scope.spawn(move || (exchange(addr, input), expected.clone()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Tentpole pin: hundreds of concurrent pipelined connections through the
/// reactor, every transcript byte-identical to the in-process reference
/// (which also checks `[seq]` ordering — the reference's seqs are dense).
#[test]
fn reactor_serves_hundreds_of_concurrent_pipelined_clients_byte_identically() {
    let sessions = sessions();
    let server = Server::start(engine(8), true);
    for (i, (got, expected)) in storm(server.addr, &sessions, 240).into_iter().enumerate() {
        assert_eq!(got, expected, "transcript drift on connection {i}");
    }
}

/// The reactor and the legacy thread-per-connection path (`OOCQ_REACTOR=0`)
/// must be observationally indistinguishable, byte for byte.
#[test]
fn reactor_and_thread_per_connection_transcripts_are_byte_identical() {
    let sessions = sessions();
    let reactor = Server::start(engine(4), true);
    let legacy = Server::start(engine(4), false);
    let via_reactor = storm(reactor.addr, &sessions, 40);
    let via_legacy = storm(legacy.addr, &sessions, 40);
    for (i, ((r, expected), (l, _))) in via_reactor.iter().zip(&via_legacy).enumerate() {
        assert_eq!(r, l, "serving modes disagree on connection {i}");
        assert_eq!(r, expected, "both modes drifted from serve() on {i}");
    }
}

/// Worker-pool size must not leak into reactor output bytes.
#[test]
fn reactor_transcripts_are_identical_across_thread_counts() {
    let sessions = sessions();
    let serial = Server::start(engine(1), true);
    let pooled = Server::start(engine(8), true);
    let one = storm(serial.addr, &sessions, 10);
    let eight = storm(pooled.addr, &sessions, 10);
    for (i, ((a, _), (b, _))) in one.iter().zip(&eight).enumerate() {
        assert_eq!(a, b, "OOCQ_THREADS changed reactor bytes on connection {i}");
    }
}

//! The workbench program format: one file bundling a schema, named queries,
//! and analysis commands.
//!
//! ```text
//! schema {
//!     class Vehicle {}
//!     class Auto : Vehicle {}
//!     class Client { VehRented: {Vehicle}; }
//! }
//!
//! query All  = { x | x in Vehicle }
//! query Some = { x | exists y: x in Auto & y in Client & x in y.VehRented }
//!
//! satisfiable Some
//! check Some <= All
//! check All == Some
//! explain Some <= All
//! expand All
//! minimize Some
//! ```
//!
//! The `oocq_cli` example executes these programs.

use crate::error::ParseError;
use crate::lexer::{lex, Spanned, Tok};
use crate::query_parser::parse_query;
use crate::schema_parser::parse_schema;
use oocq_query::Query;
use oocq_schema::Schema;

/// An analysis command of a workbench program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Command {
    /// `satisfiable Q` — decide and report satisfiability of every terminal
    /// expansion branch.
    Satisfiable(String),
    /// `check A <= B` — decide containment.
    CheckContains(String, String),
    /// `check A == B` — decide equivalence.
    CheckEquivalent(String, String),
    /// `explain A <= B` — decide containment and print the certificate.
    Explain(String, String),
    /// `expand Q` — print the terminal expansion.
    Expand(String),
    /// `minimize Q` — print the search-space-optimal form.
    Minimize(String),
}

/// A parsed workbench program.
#[derive(Clone, Debug)]
pub struct Program {
    /// The schema all queries are resolved against.
    pub schema: Schema,
    /// Named queries, in declaration order.
    pub queries: Vec<(String, Query)>,
    /// Commands, in order.
    pub commands: Vec<Command>,
}

impl Program {
    /// Look up a named query.
    pub fn query(&self, name: &str) -> Option<&Query> {
        self.queries
            .iter()
            .find_map(|(n, q)| (n == name).then_some(q))
    }
}

/// Split the raw text around the `schema { … }` block and per-line
/// constructs, then delegate to the schema/query parsers.
pub fn parse_program(input: &str) -> Result<Program, ParseError> {
    let toks = lex(input)?;
    let mut pos = 0usize;

    let ident = |t: &Spanned| -> Option<String> {
        match &t.tok {
            Tok::Ident(s) => Some(s.clone()),
            _ => None,
        }
    };

    // `schema { … }` must come first; find its balanced brace extent and
    // re-parse that slice of the original text with the schema parser.
    let Some(kw) = toks.get(pos) else {
        return Err(ParseError::new(1, 1, "empty program"));
    };
    if ident(kw).as_deref() != Some("schema") {
        return Err(ParseError::new(
            kw.line,
            kw.col,
            "a program must start with `schema { … }`",
        ));
    }
    pos += 1;
    if toks[pos].tok != Tok::LBrace {
        return Err(ParseError::new(
            toks[pos].line,
            toks[pos].col,
            "expected `{` after `schema`",
        ));
    }
    // Balanced-brace scan over the token stream.
    let mut depth = 0usize;
    let open_ix = pos;
    let mut close_ix = pos;
    for (ix, t) in toks.iter().enumerate().skip(pos) {
        match t.tok {
            Tok::LBrace => depth += 1,
            Tok::RBrace => {
                depth -= 1;
                if depth == 0 {
                    close_ix = ix;
                    break;
                }
            }
            _ => {}
        }
    }
    if depth != 0 || close_ix == open_ix {
        return Err(ParseError::new(
            kw.line,
            kw.col,
            "unterminated schema block",
        ));
    }
    // Recover the source slice between the braces by line/col arithmetic.
    let schema_src = slice_between(input, &toks[open_ix], &toks[close_ix]);
    let schema = parse_schema(schema_src)?;
    pos = close_ix + 1;

    let mut queries: Vec<(String, Query)> = Vec::new();
    let mut commands: Vec<Command> = Vec::new();
    while toks[pos].tok != Tok::Eof {
        let t = &toks[pos];
        let Some(word) = ident(t) else {
            return Err(ParseError::new(
                t.line,
                t.col,
                format!(
                    "expected a declaration or command, found {}",
                    t.tok.describe()
                ),
            ));
        };
        pos += 1;
        match word.as_str() {
            "query" => {
                let name = expect_ident(&toks, &mut pos)?;
                expect(&toks, &mut pos, &Tok::Eq)?;
                // The query body is a balanced `{ … }` block.
                if toks[pos].tok != Tok::LBrace {
                    return Err(ParseError::new(
                        toks[pos].line,
                        toks[pos].col,
                        "expected `{` starting the query body",
                    ));
                }
                let open = pos;
                let mut depth = 0usize;
                let mut close = pos;
                for (ix, t) in toks.iter().enumerate().skip(pos) {
                    match t.tok {
                        Tok::LBrace => depth += 1,
                        Tok::RBrace => {
                            depth -= 1;
                            if depth == 0 {
                                close = ix;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if depth != 0 {
                    return Err(ParseError::new(
                        toks[open].line,
                        toks[open].col,
                        "unterminated query body",
                    ));
                }
                let body = slice_spanning(input, &toks[open], &toks[close]);
                let q = parse_query(&schema, body)?;
                if queries.iter().any(|(n, _)| n == &name) {
                    return Err(ParseError::new(
                        t.line,
                        t.col,
                        format!("query `{name}` defined twice"),
                    ));
                }
                queries.push((name, q));
                pos = close + 1;
            }
            "satisfiable" => {
                commands.push(Command::Satisfiable(expect_known_query(
                    &toks, &mut pos, &queries,
                )?));
            }
            "expand" => {
                commands.push(Command::Expand(expect_known_query(
                    &toks, &mut pos, &queries,
                )?));
            }
            "minimize" => {
                commands.push(Command::Minimize(expect_known_query(
                    &toks, &mut pos, &queries,
                )?));
            }
            "check" | "explain" => {
                let a = expect_known_query(&toks, &mut pos, &queries)?;
                let op = toks[pos].clone();
                pos += 1;
                let b = expect_known_query(&toks, &mut pos, &queries)?;
                let cmd = match (&op.tok, word.as_str()) {
                    (Tok::Le, "check") => Command::CheckContains(a, b),
                    (Tok::EqEq, "check") => Command::CheckEquivalent(a, b),
                    (Tok::Le, "explain") => Command::Explain(a, b),
                    _ => {
                        return Err(ParseError::new(
                            op.line,
                            op.col,
                            format!(
                                "expected `<=`{} after `{word}`, found {}",
                                if word == "check" { " or `==`" } else { "" },
                                op.tok.describe()
                            ),
                        ))
                    }
                };
                commands.push(cmd);
            }
            other => {
                return Err(ParseError::new(
                    t.line,
                    t.col,
                    format!("unknown directive `{other}`"),
                ))
            }
        }
    }
    Ok(Program {
        schema,
        queries,
        commands,
    })
}

fn expect(toks: &[Spanned], pos: &mut usize, want: &Tok) -> Result<(), ParseError> {
    let t = &toks[*pos];
    if &t.tok == want {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError::new(
            t.line,
            t.col,
            format!("expected {}, found {}", want.describe(), t.tok.describe()),
        ))
    }
}

fn expect_ident(toks: &[Spanned], pos: &mut usize) -> Result<String, ParseError> {
    let t = &toks[*pos];
    match &t.tok {
        Tok::Ident(s) => {
            *pos += 1;
            Ok(s.clone())
        }
        other => Err(ParseError::new(
            t.line,
            t.col,
            format!("expected an identifier, found {}", other.describe()),
        )),
    }
}

fn expect_known_query(
    toks: &[Spanned],
    pos: &mut usize,
    queries: &[(String, Query)],
) -> Result<String, ParseError> {
    let t = &toks[*pos];
    let name = expect_ident(toks, pos)?;
    if !queries.iter().any(|(n, _)| n == &name) {
        return Err(ParseError::new(
            t.line,
            t.col,
            format!("unknown query `{name}`"),
        ));
    }
    Ok(name)
}

/// The source text strictly between two tokens (exclusive of both).
fn slice_between<'a>(input: &'a str, open: &Spanned, close: &Spanned) -> &'a str {
    let start = offset_of(input, open.line, open.col) + 1; // past `{`
    let end = offset_of(input, close.line, close.col);
    &input[start..end]
}

/// The source text spanning two tokens (inclusive of both).
fn slice_spanning<'a>(input: &'a str, open: &Spanned, close: &Spanned) -> &'a str {
    let start = offset_of(input, open.line, open.col);
    let end = offset_of(input, close.line, close.col) + 1; // include `}`
    &input[start..end]
}

/// Byte offset of a 1-based line/column position.
fn offset_of(input: &str, line: usize, col: usize) -> usize {
    let mut cur_line = 1usize;
    let mut cur_col = 1usize;
    for (ix, c) in input.char_indices() {
        if cur_line == line && cur_col == col {
            return ix;
        }
        if c == '\n' {
            cur_line += 1;
            cur_col = 1;
        } else {
            cur_col += 1;
        }
    }
    input.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
        schema {
            class Vehicle {}
            class Auto : Vehicle {}
            class Client { VehRented: {Vehicle}; }
        }

        query All  = { x | x in Vehicle }
        query Some = { x | exists y: x in Auto & y in Client & x in y.VehRented }

        satisfiable Some
        check Some <= All
        check All == Some
        explain Some <= All
        expand All
        minimize Some
    "#;

    #[test]
    fn parses_full_program() {
        let p = parse_program(DEMO).unwrap();
        assert_eq!(p.queries.len(), 2);
        assert_eq!(p.commands.len(), 6);
        assert!(p.query("All").is_some());
        assert!(p.query("Nope").is_none());
        assert_eq!(
            p.commands[1],
            Command::CheckContains("Some".into(), "All".into())
        );
        assert_eq!(
            p.commands[2],
            Command::CheckEquivalent("All".into(), "Some".into())
        );
        assert_eq!(p.commands[3], Command::Explain("Some".into(), "All".into()));
    }

    #[test]
    fn unknown_query_in_command_is_an_error() {
        let err =
            parse_program("schema { class C {} } query Q = { x | x in C } check Q <= Missing")
                .unwrap_err();
        assert!(err.message.contains("unknown query `Missing`"));
    }

    #[test]
    fn duplicate_query_name_is_an_error() {
        let err = parse_program(
            "schema { class C {} } query Q = { x | x in C } query Q = { x | x in C }",
        )
        .unwrap_err();
        assert!(err.message.contains("defined twice"));
    }

    #[test]
    fn program_must_start_with_schema() {
        let err = parse_program("query Q = { x | x in C }").unwrap_err();
        assert!(err.message.contains("must start with `schema"));
    }

    #[test]
    fn schema_errors_propagate_with_position() {
        let err = parse_program("schema { class C : Missing {} }").unwrap_err();
        assert!(err.message.contains("unknown class `Missing`"));
    }

    #[test]
    fn unknown_directive_is_an_error() {
        let err = parse_program("schema { class C {} } query Q = { x | x in C } frobnicate Q")
            .unwrap_err();
        assert!(err.message.contains("unknown directive"));
    }

    #[test]
    fn query_bodies_resolve_against_the_program_schema() {
        let err = parse_program("schema { class C {} } query Q = { x | x in D }").unwrap_err();
        assert!(err.message.contains("unknown class `D`"));
    }
}

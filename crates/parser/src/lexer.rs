//! Lexer for the schema and query DSLs.

use crate::error::ParseError;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `|`
    Pipe,
    /// `&`
    Amp,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    Neq,
    /// `<=`
    Le,
    /// End of input.
    Eof,
}

impl Tok {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::Pipe => "`|`".into(),
            Tok::Amp => "`&`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Eq => "`=`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::Neq => "`!=`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token plus its source position (1-based line/column).
#[derive(Clone, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// Line number, 1-based.
    pub line: usize,
    /// Column number, 1-based.
    pub col: usize,
}

/// Tokenize an input string. `//` starts a line comment.
pub fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        let bump = |c: char, line: &mut usize, col: &mut usize| {
            if c == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
        };
        match c {
            c if c.is_whitespace() => {
                chars.next();
                bump(c, &mut line, &mut col);
            }
            '/' => {
                chars.next();
                bump('/', &mut line, &mut col);
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        bump(c, &mut line, &mut col);
                        if c == '\n' {
                            break;
                        }
                    }
                } else {
                    return Err(ParseError::new(tline, tcol, "unexpected `/`"));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                        bump(c, &mut line, &mut col);
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    line: tline,
                    col: tcol,
                });
            }
            '!' => {
                chars.next();
                bump('!', &mut line, &mut col);
                if chars.peek() == Some(&'=') {
                    chars.next();
                    bump('=', &mut line, &mut col);
                    out.push(Spanned {
                        tok: Tok::Neq,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    return Err(ParseError::new(tline, tcol, "expected `!=`"));
                }
            }
            '<' => {
                chars.next();
                bump('<', &mut line, &mut col);
                if chars.peek() == Some(&'=') {
                    chars.next();
                    bump('=', &mut line, &mut col);
                    out.push(Spanned {
                        tok: Tok::Le,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    return Err(ParseError::new(tline, tcol, "expected `<=`"));
                }
            }
            '=' => {
                chars.next();
                bump('=', &mut line, &mut col);
                if chars.peek() == Some(&'=') {
                    chars.next();
                    bump('=', &mut line, &mut col);
                    out.push(Spanned {
                        tok: Tok::EqEq,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    out.push(Spanned {
                        tok: Tok::Eq,
                        line: tline,
                        col: tcol,
                    });
                }
            }
            _ => {
                let tok = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '|' => Tok::Pipe,
                    '&' => Tok::Amp,
                    ':' => Tok::Colon,
                    ',' => Tok::Comma,
                    '.' => Tok::Dot,
                    ';' => Tok::Semi,
                    other => {
                        return Err(ParseError::new(
                            tline,
                            tcol,
                            format!("unexpected character `{other}`"),
                        ))
                    }
                };
                chars.next();
                bump(c, &mut line, &mut col);
                out.push(Spanned {
                    tok,
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_query_syntax() {
        assert_eq!(
            toks("{ x | x in C & y != x.A }"),
            vec![
                Tok::LBrace,
                Tok::Ident("x".into()),
                Tok::Pipe,
                Tok::Ident("x".into()),
                Tok::Ident("in".into()),
                Tok::Ident("C".into()),
                Tok::Amp,
                Tok::Ident("y".into()),
                Tok::Neq,
                Tok::Ident("x".into()),
                Tok::Dot,
                Tok::Ident("A".into()),
                Tok::RBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn tracks_positions_across_lines() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!((ts[0].line, ts[0].col), (1, 1));
        assert_eq!((ts[1].line, ts[1].col), (2, 3));
    }

    #[test]
    fn line_comments_are_skipped() {
        assert_eq!(
            toks("a // comment\nb"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("a / b").is_err());
    }
}

//! Parser for the schema DSL.
//!
//! ```text
//! class Vehicle { AssignedTo: Client; }
//! class Auto : Vehicle {}
//! class Client { VehRented: {Vehicle}; }
//! class Discount : Client { VehRented: {Auto}; }
//! ```
//!
//! A class body lists `Attr: Type;` declarations where `Type` is a class
//! name (object-valued) or `{ClassName}` (set-valued). Classes may be
//! referenced before their declaration (two-pass resolution).
//!
//! Top-level `constraint` declarations narrow the legal states
//! (see [`oocq_schema::Constraint`]):
//!
//! ```text
//! constraint disjoint Client Vehicle;
//! constraint total Client.VehRented;
//! constraint functional Client.VehRented;
//! ```

use crate::error::ParseError;
use crate::lexer::{lex, Spanned, Tok};
use oocq_schema::{AttrType, Constraint, Schema, SchemaBuilder, SchemaError};

struct Cursor {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> &Spanned {
        &self.toks[self.pos]
    }
    fn next(&mut self) -> Spanned {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn expect(&mut self, want: &Tok) -> Result<Spanned, ParseError> {
        let t = self.next();
        if &t.tok == want {
            Ok(t)
        } else {
            Err(ParseError::new(
                t.line,
                t.col,
                format!("expected {}, found {}", want.describe(), t.tok.describe()),
            ))
        }
    }
    fn ident(&mut self) -> Result<(String, usize, usize), ParseError> {
        let t = self.next();
        match t.tok {
            Tok::Ident(s) => Ok((s, t.line, t.col)),
            other => Err(ParseError::new(
                t.line,
                t.col,
                format!("expected an identifier, found {}", other.describe()),
            )),
        }
    }
    fn eat(&mut self, want: &Tok) -> bool {
        if &self.peek().tok == want {
            self.next();
            true
        } else {
            false
        }
    }
}

struct RawClass {
    name: String,
    line: usize,
    col: usize,
    parents: Vec<(String, usize, usize)>,
    attrs: Vec<(String, RawType, usize, usize)>,
}

enum RawType {
    Object(String),
    SetOf(String),
}

/// One `constraint …` declaration before name resolution.
enum RawConstraint {
    Disjoint(String, String),
    Total(String, String),
    Functional(String, String),
}

/// Parse a schema from the DSL.
pub fn parse_schema(input: &str) -> Result<Schema, ParseError> {
    let mut cur = Cursor {
        toks: lex(input)?,
        pos: 0,
    };
    let mut raw: Vec<RawClass> = Vec::new();
    let mut raw_constraints: Vec<(RawConstraint, usize, usize)> = Vec::new();
    loop {
        if cur.peek().tok == Tok::Eof {
            break;
        }
        let (kw, line, col) = cur.ident()?;
        if kw == "constraint" {
            raw_constraints.push(parse_constraint(&mut cur, line, col)?);
            continue;
        }
        if kw != "class" {
            return Err(ParseError::new(
                line,
                col,
                format!("expected `class` or `constraint`, found `{kw}`"),
            ));
        }
        let (name, nline, ncol) = cur.ident()?;
        let mut parents = Vec::new();
        if cur.eat(&Tok::Colon) {
            loop {
                parents.push(cur.ident()?);
                if !cur.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        cur.expect(&Tok::LBrace)?;
        let mut attrs = Vec::new();
        while !cur.eat(&Tok::RBrace) {
            let (attr, aline, acol) = cur.ident()?;
            cur.expect(&Tok::Colon)?;
            let ty = if cur.eat(&Tok::LBrace) {
                let (c, ..) = cur.ident()?;
                cur.expect(&Tok::RBrace)?;
                RawType::SetOf(c)
            } else {
                RawType::Object(cur.ident()?.0)
            };
            cur.eat(&Tok::Semi);
            attrs.push((attr, ty, aline, acol));
        }
        raw.push(RawClass {
            name,
            line: nline,
            col: ncol,
            parents,
            attrs,
        });
    }

    // Two-pass build: declare all classes, then edges and attributes.
    let mut b = SchemaBuilder::new();
    for rc in &raw {
        b.class(&rc.name)
            .map_err(|e| schema_err(rc.line, rc.col, e))?;
    }
    for rc in &raw {
        let child = b.class_id(&rc.name).expect("declared above");
        for (p, pline, pcol) in &rc.parents {
            let parent = b
                .class_id(p)
                .ok_or_else(|| ParseError::new(*pline, *pcol, format!("unknown class `{p}`")))?;
            b.subclass(child, parent)
                .map_err(|e| schema_err(*pline, *pcol, e))?;
        }
        for (attr, ty, aline, acol) in &rc.attrs {
            let resolve = |n: &String| {
                b.class_id(n)
                    .ok_or_else(|| ParseError::new(*aline, *acol, format!("unknown class `{n}`")))
            };
            let at = match ty {
                RawType::Object(n) => AttrType::Object(resolve(n)?),
                RawType::SetOf(n) => AttrType::SetOf(resolve(n)?),
            };
            b.attribute(child, attr, at)
                .map_err(|e| schema_err(*aline, *acol, e))?;
        }
    }
    let mut finish_at = (1, 1);
    for (rc, line, col) in &raw_constraints {
        let class = |n: &String| {
            b.class_id(n)
                .ok_or_else(|| ParseError::new(*line, *col, format!("unknown class `{n}`")))
        };
        let attr = |b: &SchemaBuilder, n: &String| {
            b.attr_id(n)
                .ok_or_else(|| ParseError::new(*line, *col, format!("unknown attribute `{n}`")))
        };
        let c = match rc {
            RawConstraint::Disjoint(x, y) => Constraint::Disjoint(class(x)?, class(y)?),
            RawConstraint::Total(cl, at) => Constraint::Total(class(cl)?, attr(&b, at)?),
            RawConstraint::Functional(cl, at) => Constraint::Functional(class(cl)?, attr(&b, at)?),
        };
        b.constraint(c);
        // Constraint validation happens inside `finish`; attribute its
        // errors to the last constraint's position rather than line 1.
        finish_at = (*line, *col);
    }
    b.finish()
        .map_err(|e| schema_err(finish_at.0, finish_at.1, e))
}

/// Parse the tail of one `constraint` declaration (the keyword itself is
/// already consumed): `disjoint A B;`, `total C.A;`, or `functional C.A;`.
fn parse_constraint(
    cur: &mut Cursor,
    line: usize,
    col: usize,
) -> Result<(RawConstraint, usize, usize), ParseError> {
    let (kind, kline, kcol) = cur.ident()?;
    let raw = match kind.as_str() {
        "disjoint" => {
            let (a, ..) = cur.ident()?;
            let (b, ..) = cur.ident()?;
            RawConstraint::Disjoint(a, b)
        }
        "total" | "functional" => {
            let (class, ..) = cur.ident()?;
            cur.expect(&Tok::Dot)?;
            let (attr, ..) = cur.ident()?;
            if kind == "total" {
                RawConstraint::Total(class, attr)
            } else {
                RawConstraint::Functional(class, attr)
            }
        }
        other => {
            return Err(ParseError::new(
                kline,
                kcol,
                format!("expected `disjoint`, `total`, or `functional`, found `{other}`"),
            ))
        }
    };
    cur.eat(&Tok::Semi);
    Ok((raw, line, col))
}

fn schema_err(line: usize, col: usize, e: SchemaError) -> ParseError {
    ParseError::new(line, col, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const VEHICLE: &str = r#"
        class Vehicle { AssignedTo: Client; }
        class Auto : Vehicle {}
        class Trailer : Vehicle {}
        class Truck : Vehicle {}
        class Client { VehRented: {Vehicle}; }
        class Discount : Client { VehRented: {Auto}; }
        class Regular : Client {}
    "#;

    #[test]
    fn parses_vehicle_rental_schema() {
        let s = parse_schema(VEHICLE).unwrap();
        assert_eq!(s.class_count(), 7);
        let discount = s.class_id("Discount").unwrap();
        let veh = s.attr_id("VehRented").unwrap();
        assert_eq!(
            s.attr_type(discount, veh),
            Some(AttrType::SetOf(s.class_id("Auto").unwrap()))
        );
        assert!(s.is_subclass(discount, s.class_id("Client").unwrap()));
    }

    #[test]
    fn forward_references_allowed() {
        // Vehicle references Client before its declaration above; also check
        // the other order explicitly.
        let s = parse_schema("class A { F: B; } class B {}").unwrap();
        assert!(s.class_id("B").is_some());
    }

    #[test]
    fn multiple_parents() {
        let s = parse_schema("class A {} class B {} class C : A, B {}").unwrap();
        let c = s.class_id("C").unwrap();
        assert!(s.is_subclass(c, s.class_id("A").unwrap()));
        assert!(s.is_subclass(c, s.class_id("B").unwrap()));
    }

    #[test]
    fn unknown_parent_is_an_error_with_position() {
        let err = parse_schema("class A : Missing {}").unwrap_err();
        assert!(err.message.contains("Missing"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn schema_errors_are_surfaced() {
        let err = parse_schema("class A {} class A {}").unwrap_err();
        assert!(err.message.contains("declared more than once"));
        // Invalid refinement.
        let err = parse_schema("class P { F: P; } class R {} class Q : P { F: R; }").unwrap_err();
        assert!(err.message.contains("not a subtype"));
    }

    #[test]
    fn comments_and_missing_semicolons_tolerated() {
        let s = parse_schema("// header\nclass A { F: A }").unwrap();
        assert_eq!(s.class_count(), 1);
    }

    #[test]
    fn display_is_a_fixpoint_for_reparsed_schemas() {
        // The rendered description of a schema is stable under
        // parse→render — which is what lets `oocq-service` use the
        // description string as a collision-free schema cache key.
        for s in [
            oocq_schema::samples::single_class(),
            oocq_schema::samples::vehicle_rental(),
            oocq_schema::samples::n1_partition(),
            oocq_schema::samples::unrelated_subtypes(),
            oocq_schema::samples::example_31(),
            oocq_schema::samples::example_33(),
        ] {
            let text = s.to_string();
            let reparsed = parse_schema(&text).unwrap();
            assert_eq!(reparsed.to_string(), text);
        }
    }

    const CONSTRAINED: &str = r#"
        class P {}
        class Q {}
        class B {}
        class T1 : B { F: T1; Items: {T1}; }
        class T2 : B, P, Q {}
        constraint disjoint Q P;
        constraint total T1.F;
        constraint functional T1.Items;
    "#;

    #[test]
    fn parses_constraint_declarations() {
        let s = parse_schema(CONSTRAINED).unwrap();
        assert_eq!(s.constraints().len(), 3);
        assert!(s.is_dead_terminal(s.class_id("T2").unwrap()));
        assert!(!s.is_dead_terminal(s.class_id("T1").unwrap()));
    }

    #[test]
    fn constrained_display_is_a_fixpoint() {
        let s = parse_schema(CONSTRAINED).unwrap();
        let text = s.to_string();
        assert!(text.contains("constraint disjoint P Q;"), "{text}");
        let reparsed = parse_schema(&text).unwrap();
        assert_eq!(reparsed.to_string(), text);
        assert_eq!(reparsed.constraints(), s.constraints());
    }

    #[test]
    fn constraint_with_unknown_class_is_an_error_with_position() {
        let err = parse_schema("class A {}\nconstraint disjoint A Missing;").unwrap_err();
        assert!(err.message.contains("unknown class `Missing`"), "{err}");
        assert_eq!(err.line, 2);
        let err = parse_schema("class A {}\nconstraint total Missing.F;").unwrap_err();
        assert!(err.message.contains("unknown class `Missing`"), "{err}");
    }

    #[test]
    fn constraint_with_unknown_attribute_is_an_error() {
        let err = parse_schema("class A {}\nconstraint total A.Nope;").unwrap_err();
        assert!(err.message.contains("unknown attribute `Nope`"), "{err}");
        // An attribute that exists, but not on that class.
        let err = parse_schema("class A { F: A; } class B {}\nconstraint total B.F;").unwrap_err();
        assert!(err.message.contains("no such attribute"), "{err}");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn duplicate_constraints_are_an_error() {
        let err = parse_schema(
            "class A {} class B {}\nconstraint disjoint A B;\nconstraint disjoint B A;",
        )
        .unwrap_err();
        assert!(err.message.contains("more than once"), "{err}");
    }

    #[test]
    fn partitioning_contradictions_are_an_error() {
        let err = parse_schema("class A {} class B : A {}\nconstraint disjoint A B;").unwrap_err();
        assert!(err.message.contains("terminal partitioning"), "{err}");
        let err = parse_schema("class A {}\nconstraint disjoint A A;").unwrap_err();
        assert!(err.message.contains("never disjoint from itself"), "{err}");
    }

    #[test]
    fn malformed_constraint_syntax_is_an_error() {
        let err = parse_schema("class A {}\nconstraint exclusive A A;").unwrap_err();
        assert!(err.message.contains("expected `disjoint`"), "{err}");
        let err = parse_schema("class A { F: A; }\nconstraint total A F;").unwrap_err();
        assert!(err.message.contains("expected `.`"), "{err}");
        let err = parse_schema("class A {}\nconstrain disjoint A A;").unwrap_err();
        assert!(
            err.message.contains("expected `class` or `constraint`"),
            "{err}"
        );
    }

    #[test]
    fn functionality_of_object_attribute_is_an_error() {
        let err = parse_schema("class A { F: A; }\nconstraint functional A.F;").unwrap_err();
        assert!(err.message.contains("set-valued"), "{err}");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn display_round_trips_through_parser() {
        let s = parse_schema(VEHICLE).unwrap();
        let text = s.to_string();
        let s2 = parse_schema(&text).unwrap();
        assert_eq!(s.class_count(), s2.class_count());
        for c in s.classes() {
            let name = s.class_name(c);
            let c2 = s2.class_id(name).unwrap();
            assert_eq!(
                s.parents(c).len(),
                s2.parents(c2).len(),
                "parents of {name}"
            );
            assert_eq!(s.effective_type(c).len(), s2.effective_type(c2).len());
        }
    }
}

//! Parser for the schema DSL.
//!
//! ```text
//! class Vehicle { AssignedTo: Client; }
//! class Auto : Vehicle {}
//! class Client { VehRented: {Vehicle}; }
//! class Discount : Client { VehRented: {Auto}; }
//! ```
//!
//! A class body lists `Attr: Type;` declarations where `Type` is a class
//! name (object-valued) or `{ClassName}` (set-valued). Classes may be
//! referenced before their declaration (two-pass resolution).

use crate::error::ParseError;
use crate::lexer::{lex, Spanned, Tok};
use oocq_schema::{AttrType, Schema, SchemaBuilder, SchemaError};

struct Cursor {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Cursor {
    fn peek(&self) -> &Spanned {
        &self.toks[self.pos]
    }
    fn next(&mut self) -> Spanned {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn expect(&mut self, want: &Tok) -> Result<Spanned, ParseError> {
        let t = self.next();
        if &t.tok == want {
            Ok(t)
        } else {
            Err(ParseError::new(
                t.line,
                t.col,
                format!("expected {}, found {}", want.describe(), t.tok.describe()),
            ))
        }
    }
    fn ident(&mut self) -> Result<(String, usize, usize), ParseError> {
        let t = self.next();
        match t.tok {
            Tok::Ident(s) => Ok((s, t.line, t.col)),
            other => Err(ParseError::new(
                t.line,
                t.col,
                format!("expected an identifier, found {}", other.describe()),
            )),
        }
    }
    fn eat(&mut self, want: &Tok) -> bool {
        if &self.peek().tok == want {
            self.next();
            true
        } else {
            false
        }
    }
}

struct RawClass {
    name: String,
    line: usize,
    col: usize,
    parents: Vec<(String, usize, usize)>,
    attrs: Vec<(String, RawType, usize, usize)>,
}

enum RawType {
    Object(String),
    SetOf(String),
}

/// Parse a schema from the DSL.
pub fn parse_schema(input: &str) -> Result<Schema, ParseError> {
    let mut cur = Cursor {
        toks: lex(input)?,
        pos: 0,
    };
    let mut raw: Vec<RawClass> = Vec::new();
    loop {
        if cur.peek().tok == Tok::Eof {
            break;
        }
        let (kw, line, col) = cur.ident()?;
        if kw != "class" {
            return Err(ParseError::new(
                line,
                col,
                format!("expected `class`, found `{kw}`"),
            ));
        }
        let (name, nline, ncol) = cur.ident()?;
        let mut parents = Vec::new();
        if cur.eat(&Tok::Colon) {
            loop {
                parents.push(cur.ident()?);
                if !cur.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        cur.expect(&Tok::LBrace)?;
        let mut attrs = Vec::new();
        while !cur.eat(&Tok::RBrace) {
            let (attr, aline, acol) = cur.ident()?;
            cur.expect(&Tok::Colon)?;
            let ty = if cur.eat(&Tok::LBrace) {
                let (c, ..) = cur.ident()?;
                cur.expect(&Tok::RBrace)?;
                RawType::SetOf(c)
            } else {
                RawType::Object(cur.ident()?.0)
            };
            cur.eat(&Tok::Semi);
            attrs.push((attr, ty, aline, acol));
        }
        raw.push(RawClass {
            name,
            line: nline,
            col: ncol,
            parents,
            attrs,
        });
    }

    // Two-pass build: declare all classes, then edges and attributes.
    let mut b = SchemaBuilder::new();
    for rc in &raw {
        b.class(&rc.name)
            .map_err(|e| schema_err(rc.line, rc.col, e))?;
    }
    for rc in &raw {
        let child = b.class_id(&rc.name).expect("declared above");
        for (p, pline, pcol) in &rc.parents {
            let parent = b
                .class_id(p)
                .ok_or_else(|| ParseError::new(*pline, *pcol, format!("unknown class `{p}`")))?;
            b.subclass(child, parent)
                .map_err(|e| schema_err(*pline, *pcol, e))?;
        }
        for (attr, ty, aline, acol) in &rc.attrs {
            let resolve = |n: &String| {
                b.class_id(n)
                    .ok_or_else(|| ParseError::new(*aline, *acol, format!("unknown class `{n}`")))
            };
            let at = match ty {
                RawType::Object(n) => AttrType::Object(resolve(n)?),
                RawType::SetOf(n) => AttrType::SetOf(resolve(n)?),
            };
            b.attribute(child, attr, at)
                .map_err(|e| schema_err(*aline, *acol, e))?;
        }
    }
    b.finish().map_err(|e| schema_err(1, 1, e))
}

fn schema_err(line: usize, col: usize, e: SchemaError) -> ParseError {
    ParseError::new(line, col, e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    const VEHICLE: &str = r#"
        class Vehicle { AssignedTo: Client; }
        class Auto : Vehicle {}
        class Trailer : Vehicle {}
        class Truck : Vehicle {}
        class Client { VehRented: {Vehicle}; }
        class Discount : Client { VehRented: {Auto}; }
        class Regular : Client {}
    "#;

    #[test]
    fn parses_vehicle_rental_schema() {
        let s = parse_schema(VEHICLE).unwrap();
        assert_eq!(s.class_count(), 7);
        let discount = s.class_id("Discount").unwrap();
        let veh = s.attr_id("VehRented").unwrap();
        assert_eq!(
            s.attr_type(discount, veh),
            Some(AttrType::SetOf(s.class_id("Auto").unwrap()))
        );
        assert!(s.is_subclass(discount, s.class_id("Client").unwrap()));
    }

    #[test]
    fn forward_references_allowed() {
        // Vehicle references Client before its declaration above; also check
        // the other order explicitly.
        let s = parse_schema("class A { F: B; } class B {}").unwrap();
        assert!(s.class_id("B").is_some());
    }

    #[test]
    fn multiple_parents() {
        let s = parse_schema("class A {} class B {} class C : A, B {}").unwrap();
        let c = s.class_id("C").unwrap();
        assert!(s.is_subclass(c, s.class_id("A").unwrap()));
        assert!(s.is_subclass(c, s.class_id("B").unwrap()));
    }

    #[test]
    fn unknown_parent_is_an_error_with_position() {
        let err = parse_schema("class A : Missing {}").unwrap_err();
        assert!(err.message.contains("Missing"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn schema_errors_are_surfaced() {
        let err = parse_schema("class A {} class A {}").unwrap_err();
        assert!(err.message.contains("declared more than once"));
        // Invalid refinement.
        let err = parse_schema("class P { F: P; } class R {} class Q : P { F: R; }").unwrap_err();
        assert!(err.message.contains("not a subtype"));
    }

    #[test]
    fn comments_and_missing_semicolons_tolerated() {
        let s = parse_schema("// header\nclass A { F: A }").unwrap();
        assert_eq!(s.class_count(), 1);
    }

    #[test]
    fn display_is_a_fixpoint_for_reparsed_schemas() {
        // The rendered description of a schema is stable under
        // parse→render — which is what lets `oocq-service` use the
        // description string as a collision-free schema cache key.
        for s in [
            oocq_schema::samples::single_class(),
            oocq_schema::samples::vehicle_rental(),
            oocq_schema::samples::n1_partition(),
            oocq_schema::samples::unrelated_subtypes(),
            oocq_schema::samples::example_31(),
            oocq_schema::samples::example_33(),
        ] {
            let text = s.to_string();
            let reparsed = parse_schema(&text).unwrap();
            assert_eq!(reparsed.to_string(), text);
        }
    }

    #[test]
    fn display_round_trips_through_parser() {
        let s = parse_schema(VEHICLE).unwrap();
        let text = s.to_string();
        let s2 = parse_schema(&text).unwrap();
        assert_eq!(s.class_count(), s2.class_count());
        for c in s.classes() {
            let name = s.class_name(c);
            let c2 = s2.class_id(name).unwrap();
            assert_eq!(
                s.parents(c).len(),
                s2.parents(c2).len(),
                "parents of {name}"
            );
            assert_eq!(s.effective_type(c).len(), s2.effective_type(c2).len());
        }
    }
}

//! # oocq-parser
//!
//! Concrete syntax for the OODB model of Chan (PODS 1992): a schema DSL
//! (`class Discount : Client { VehRented: {Auto}; }`) and the calculus-like
//! query syntax of §2.2 (`{ x | exists y: x in Vehicle & y in Discount &
//! x in y.VehRented }`), with positioned errors. The pretty-printers in
//! `oocq-query`/`oocq-schema` emit exactly this syntax, so display/parse
//! round-trips hold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod lexer;
mod program;
mod query_parser;
mod schema_parser;

pub use error::ParseError;
pub use program::{parse_program, Command, Program};
pub use query_parser::{parse_query, parse_union};
pub use schema_parser::parse_schema;

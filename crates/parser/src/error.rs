//! Parse errors with source positions.

use std::error::Error;
use std::fmt;

/// A parse failure at a source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Build an error at a position.
    pub fn new(line: usize, col: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(3, 7, "boom");
        assert_eq!(e.to_string(), "3:7: boom");
    }
}

//! Parser for the calculus-like query DSL (§2.2's concrete syntax).
//!
//! ```text
//! { x | exists y, s: x in N1 & y in G & s in H
//!       & y = x.B & y in x.A & s in x.A }
//! ```
//!
//! * `v in C1 | C2` / `v not in C1 | C2` — range / non-range atoms;
//! * `t = u` / `t != u` where each side is `v` or `v.Attr` — equality /
//!   inequality atoms;
//! * `v in w.Attr` / `v not in w.Attr` — membership / non-membership atoms;
//! * `true` — the empty matrix;
//! * **path expressions**: `x.A.B`, `x.A in C`, and `x.A in y.B` are
//!   accepted and desugared into fresh intermediate variables plus
//!   equalities, exactly as §2.2's remark prescribes.
//!
//! Unions are written `{ … } union { … }`. Variables must be declared (the
//! answer variable before `|`, bound variables in the `exists` list); class
//! and attribute names are resolved against the schema.

use crate::error::ParseError;
use crate::lexer::{lex, Spanned, Tok};
use oocq_query::{Query, QueryBuilder, Term, UnionQuery, VarId};
use oocq_schema::{ClassId, Schema};
use std::collections::HashMap;

struct Cursor<'s> {
    schema: &'s Schema,
    toks: Vec<Spanned>,
    pos: usize,
}

impl Cursor<'_> {
    fn peek(&self) -> &Spanned {
        &self.toks[self.pos]
    }
    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }
    fn next(&mut self) -> Spanned {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }
    fn expect(&mut self, want: &Tok) -> Result<Spanned, ParseError> {
        let t = self.next();
        if &t.tok == want {
            Ok(t)
        } else {
            Err(ParseError::new(
                t.line,
                t.col,
                format!("expected {}, found {}", want.describe(), t.tok.describe()),
            ))
        }
    }
    fn ident(&mut self) -> Result<(String, usize, usize), ParseError> {
        let t = self.next();
        match t.tok {
            Tok::Ident(s) => Ok((s, t.line, t.col)),
            other => Err(ParseError::new(
                t.line,
                t.col,
                format!("expected an identifier, found {}", other.describe()),
            )),
        }
    }
    fn eat(&mut self, want: &Tok) -> bool {
        if &self.peek().tok == want {
            self.next();
            true
        } else {
            false
        }
    }
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(&self.peek().tok, Tok::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }
}

struct QueryScope {
    builder: QueryBuilder,
    vars: HashMap<String, VarId>,
    fresh: usize,
}

impl QueryScope {
    fn var(&self, name: &str, line: usize, col: usize) -> Result<VarId, ParseError> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| ParseError::new(line, col, format!("undeclared variable `{name}`")))
    }

    /// A fresh bound variable for path-expression desugaring (§2.2 remarks:
    /// `x.A₁…Aₙ` is expressible via intermediate variables).
    fn fresh_var(&mut self) -> VarId {
        let name = format!("_q{}", self.fresh);
        self.fresh += 1;
        let v = self.builder.var(&name);
        self.vars.insert(name, v);
        v
    }
}

/// Parse a single conjunctive query against a schema.
pub fn parse_query(schema: &Schema, input: &str) -> Result<Query, ParseError> {
    let mut cur = Cursor {
        schema,
        toks: lex(input)?,
        pos: 0,
    };
    let q = one_query(&mut cur)?;
    cur.expect(&Tok::Eof)?;
    Ok(q)
}

/// Parse a union `{ … } union { … } …` (or a single query) against a schema.
pub fn parse_union(schema: &Schema, input: &str) -> Result<UnionQuery, ParseError> {
    let mut cur = Cursor {
        schema,
        toks: lex(input)?,
        pos: 0,
    };
    let mut u = UnionQuery::single(one_query(&mut cur)?);
    while cur.eat_kw("union") {
        u.push(one_query(&mut cur)?);
    }
    cur.expect(&Tok::Eof)?;
    Ok(u)
}

fn one_query(cur: &mut Cursor<'_>) -> Result<Query, ParseError> {
    cur.expect(&Tok::LBrace)?;
    let (free_name, ..) = cur.ident()?;
    cur.expect(&Tok::Pipe)?;
    let mut scope = {
        let builder = QueryBuilder::new(&free_name);
        let mut vars = HashMap::new();
        vars.insert(free_name.clone(), builder.free());
        QueryScope {
            builder,
            vars,
            fresh: 0,
        }
    };
    if cur.eat_kw("exists") {
        loop {
            let (name, line, col) = cur.ident()?;
            if scope.vars.contains_key(&name) {
                return Err(ParseError::new(
                    line,
                    col,
                    format!("variable `{name}` declared twice"),
                ));
            }
            let v = scope.builder.var(&name);
            scope.vars.insert(name, v);
            if !cur.eat(&Tok::Comma) {
                break;
            }
        }
        cur.expect(&Tok::Colon)?;
    }
    if cur.eat_kw("true") {
        cur.expect(&Tok::RBrace)?;
        return Ok(scope.builder.build());
    }
    loop {
        atom(cur, &mut scope)?;
        if !cur.eat(&Tok::Amp) {
            break;
        }
    }
    cur.expect(&Tok::RBrace)?;
    Ok(scope.builder.build())
}

/// A parsed (possibly path-valued) side: base variable plus attribute chain.
struct Chain {
    base: VarId,
    attrs: Vec<oocq_schema::AttrId>,
}

/// Parse `var(.Attr)*`, resolving attribute names against the schema.
fn chain(cur: &mut Cursor<'_>, scope: &QueryScope) -> Result<Chain, ParseError> {
    let (name, line, col) = cur.ident()?;
    let base = scope.var(&name, line, col)?;
    let mut attrs = Vec::new();
    while cur.eat(&Tok::Dot) {
        let (attr, aline, acol) = cur.ident()?;
        let a = cur
            .schema
            .attr_id(&attr)
            .ok_or_else(|| ParseError::new(aline, acol, format!("unknown attribute `{attr}`")))?;
        attrs.push(a);
    }
    Ok(Chain { base, attrs })
}

/// Desugar all but the last `keep_last` attributes of a chain into fresh
/// equated variables (`z = x.A` per step), per the paper's path-expression
/// encoding. Returns the final base variable and the remaining (≤
/// `keep_last`) attributes.
fn desugar(scope: &mut QueryScope, c: Chain, keep_last: usize) -> Chain {
    let Chain { mut base, attrs } = c;
    let cut = attrs.len().saturating_sub(keep_last);
    for &a in &attrs[..cut] {
        let fresh = scope.fresh_var();
        scope.builder.eq(Term::Var(fresh), Term::Attr(base, a));
        base = fresh;
    }
    Chain {
        base,
        attrs: attrs[cut..].to_vec(),
    }
}

/// Reduce an already-parsed chain to an (in)equality operand.
fn finish_term(scope: &mut QueryScope, c: Chain) -> Term {
    let c = desugar(scope, c, 1);
    match c.attrs.as_slice() {
        [] => Term::Var(c.base),
        [a] => Term::Attr(c.base, *a),
        _ => unreachable!("desugar keeps at most one attribute"),
    }
}

/// A parsed left/right side of an (in)equality: a variable or `var.Attr`,
/// with longer paths desugared.
fn term(cur: &mut Cursor<'_>, scope: &mut QueryScope) -> Result<Term, ParseError> {
    let c = chain(cur, scope)?;
    let c = desugar(scope, c, 1);
    Ok(match c.attrs.as_slice() {
        [] => Term::Var(c.base),
        [a] => Term::Attr(c.base, *a),
        _ => unreachable!("desugar keeps at most one attribute"),
    })
}

fn class_list(cur: &mut Cursor<'_>) -> Result<Vec<(String, usize, usize)>, ParseError> {
    let mut names = vec![cur.ident()?];
    while cur.eat(&Tok::Pipe) {
        names.push(cur.ident()?);
    }
    Ok(names)
}

fn resolve_classes(
    cur: &Cursor<'_>,
    names: Vec<(String, usize, usize)>,
) -> Result<Vec<ClassId>, ParseError> {
    names
        .into_iter()
        .map(|(n, line, col)| {
            cur.schema
                .class_id(&n)
                .ok_or_else(|| ParseError::new(line, col, format!("unknown class `{n}`")))
        })
        .collect()
}

fn atom(cur: &mut Cursor<'_>, scope: &mut QueryScope) -> Result<(), ParseError> {
    let lhs_chain = chain(cur, scope)?;
    let t = cur.next();
    match &t.tok {
        Tok::Eq => {
            let lhs = finish_term(scope, lhs_chain);
            let rhs = term(cur, scope)?;
            scope.builder.eq(lhs, rhs);
            Ok(())
        }
        Tok::Neq => {
            let lhs = finish_term(scope, lhs_chain);
            let rhs = term(cur, scope)?;
            scope.builder.neq(lhs, rhs);
            Ok(())
        }
        Tok::Ident(kw) if kw == "in" || kw == "not" => {
            let negated = kw == "not";
            if negated {
                let (inkw, line, col) = cur.ident()?;
                if inkw != "in" {
                    return Err(ParseError::new(line, col, "expected `in` after `not`"));
                }
            }
            // The paper's remark in §2.2: atoms `x.A θ C` and `x.A θ y.B`
            // are expressible indirectly — desugar the whole left chain to
            // a fresh variable.
            let v = desugar(scope, lhs_chain, 0).base;
            // Disambiguate `v in Class | …` from `v in w.Attr`: an
            // identifier followed by `.` is a membership right side.
            if matches!(&cur.peek().tok, Tok::Ident(_)) && cur.peek2() == &Tok::Dot {
                let rhs = chain(cur, scope)?;
                let rhs = desugar(scope, rhs, 1);
                let [a] = rhs.attrs.as_slice() else {
                    unreachable!("membership right side always ends in an attribute");
                };
                if negated {
                    scope.builder.non_member(v, rhs.base, *a);
                } else {
                    scope.builder.member(v, rhs.base, *a);
                }
            } else {
                let names = class_list(cur)?;
                let classes = resolve_classes(cur, names)?;
                if negated {
                    scope.builder.non_range(v, classes);
                } else {
                    scope.builder.range(v, classes);
                }
            }
            Ok(())
        }
        other => Err(ParseError::new(
            t.line,
            t.col,
            format!(
                "expected `=`, `!=`, `in`, or `not in`, found {}",
                other.describe()
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_schema::samples;

    #[test]
    fn parses_the_example_12_query() {
        let s = samples::n1_partition();
        let q = parse_query(
            &s,
            "{ x | exists y, s: x in N1 & y in G & s in H & y = x.B & y in x.A & s in x.A }",
        )
        .unwrap();
        assert_eq!(q.var_count(), 3);
        assert_eq!(q.atoms().len(), 6);
        assert!(q.is_positive());
    }

    #[test]
    fn display_parse_round_trip() {
        let s = samples::n1_partition();
        let text = "{ x | exists y, s: x in N1 & y in G & s in H & y = x.B & y in x.A & s in x.A }";
        let q = parse_query(&s, text).unwrap();
        assert_eq!(q.display(&s).to_string(), text);
        let again = parse_query(&s, &q.display(&s).to_string()).unwrap();
        assert_eq!(q, again);
    }

    #[test]
    fn parses_negative_atoms_and_disjunctions() {
        let s = samples::vehicle_rental();
        let q = parse_query(
            &s,
            "{ x | exists y: x in Auto | Truck & y in Client & x not in y.VehRented & x != y }",
        )
        .unwrap();
        assert!(!q.is_positive());
        assert_eq!(q.atoms().len(), 4);
        assert_eq!(
            q.display(&s).to_string(),
            "{ x | exists y: x in Auto | Truck & y in Client & x not in y.VehRented & x != y }"
        );
    }

    #[test]
    fn parses_true_matrix() {
        let s = samples::single_class();
        let q = parse_query(&s, "{ x | true }").unwrap();
        assert!(q.atoms().is_empty());
    }

    #[test]
    fn parses_unions() {
        let s = samples::vehicle_rental();
        let u = parse_union(&s, "{ x | x in Auto } union { x | x in Truck }").unwrap();
        assert_eq!(u.len(), 2);
        assert_eq!(
            u.display(&s).to_string(),
            "{ x | x in Auto } union { x | x in Truck }"
        );
    }

    #[test]
    fn undeclared_variable_is_an_error() {
        let s = samples::single_class();
        let err = parse_query(&s, "{ x | x = y }").unwrap_err();
        assert!(err.message.contains("undeclared variable `y`"));
    }

    #[test]
    fn duplicate_bound_variable_is_an_error() {
        let s = samples::single_class();
        let err = parse_query(&s, "{ x | exists y, y: x in C }").unwrap_err();
        assert!(err.message.contains("declared twice"));
    }

    #[test]
    fn unknown_class_and_attribute_are_errors() {
        let s = samples::single_class();
        assert!(parse_query(&s, "{ x | x in Nope }")
            .unwrap_err()
            .message
            .contains("unknown class"));
        assert!(parse_query(&s, "{ x | exists y: x in y.Nope }")
            .unwrap_err()
            .message
            .contains("unknown attribute"));
    }

    #[test]
    fn attr_on_lhs_of_membership_desugars() {
        // `x.A in y.B` is the indirect form of §2.2's remark: a fresh
        // variable z with z = x.A and z in y.B.
        let s = samples::example_31();
        let q = parse_query(&s, "{ x | exists y: x.A in y.B & x in C & y in C }").unwrap();
        assert_eq!(q.var_count(), 3);
        let text = q.display(&s).to_string();
        assert!(text.contains("_q0 = x.A"), "got {text}");
        assert!(text.contains("_q0 in y.B"), "got {text}");
    }

    #[test]
    fn path_expressions_desugar_stepwise() {
        // x.A.A = y over a self-referencing schema: two fresh variables.
        let mut sb = oocq_schema::SchemaBuilder::new();
        let c = sb.class("C").unwrap();
        sb.attribute(c, "A", oocq_schema::AttrType::Object(c))
            .unwrap();
        sb.attribute(c, "S", oocq_schema::AttrType::SetOf(c))
            .unwrap();
        let s = sb.finish().unwrap();
        let q = parse_query(&s, "{ x | exists y: x in C & y in C & x.A.A = y }").unwrap();
        assert_eq!(q.var_count(), 3); // x, y, _q0 (only one step desugars)
        let text = q.display(&s).to_string();
        assert!(text.contains("_q0 = x.A"), "got {text}");
        assert!(text.contains("_q0.A = y"), "got {text}");

        // Membership through a path: y in x.A.S.
        let q = parse_query(&s, "{ x | exists y: x in C & y in C & y in x.A.S }").unwrap();
        let text = q.display(&s).to_string();
        assert!(text.contains("_q0 = x.A"), "got {text}");
        assert!(text.contains("y in _q0.S"), "got {text}");
    }

    #[test]
    fn range_atom_on_path_desugars() {
        // `x.A in D1` — the §2.2 form `y.A θ C₁ ∨ … ∨ Cₙ`.
        let mut sb = oocq_schema::SchemaBuilder::new();
        let c = sb.class("C").unwrap();
        let d = sb.class("D").unwrap();
        let d1 = sb.class("D1").unwrap();
        sb.subclass(d1, d).unwrap();
        sb.attribute(c, "A", oocq_schema::AttrType::Object(d))
            .unwrap();
        let s = sb.finish().unwrap();
        let q = parse_query(&s, "{ x | x in C & x.A in D1 }").unwrap();
        let text = q.display(&s).to_string();
        assert!(text.contains("_q0 = x.A"), "got {text}");
        assert!(text.contains("_q0 in D1"), "got {text}");
        // The desugared query participates in the pipeline end to end.
        let n = oocq_query::normalize(&q, &s).unwrap();
        assert!(oocq_query::check_well_formed(&n).is_ok());
    }

    #[test]
    fn attr_terms_in_equalities() {
        let s = samples::example_31();
        let q = parse_query(&s, "{ x | exists y: x.A = y.A & x in C & y in C }").unwrap();
        assert_eq!(q.atoms().len(), 3);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let s = samples::single_class();
        assert!(parse_query(&s, "{ x | x in C } extra").is_err());
    }
}

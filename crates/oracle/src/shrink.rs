//! Counterexample shrinking: reduce a violating `(schema, Q₁, Q₂, state)`
//! to a locally minimal one while the engine/evaluation disagreement
//! persists, then render it as a replayable workbench program.
//!
//! The reducers are the classic trio, applied to a fixpoint in order of
//! expected payoff: drop a query atom, merge two query variables, delete a
//! state object (nulling dangling references). A candidate is accepted only
//! if the *re-derived* predicate still fails the same way — the witness
//! object is recomputed after every step, so reductions are free to
//! invalidate the old one.

use oocq_core::{Budget, Containment, Engine};
use oocq_eval::answer_budgeted;
use oocq_query::{Atom, Query, QueryBuilder, VarId};
use oocq_schema::{AttrType, Schema};
use oocq_state::{Oid, State, StateBuilder, Value};
use std::fmt;

/// Which engine claim the evaluation evidence contradicts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Engine claimed `Q₁ ⊆ Q₂`; the state answers `Q₁` with an object
    /// `Q₂` misses.
    Containment,
    /// Engine claimed `Q₁` unsatisfiable; the state answers it anyway.
    Vacuity,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationKind::Containment => write!(f, "containment"),
            ViolationKind::Vacuity => write!(f, "vacuity"),
        }
    }
}

/// A confirmed soundness violation: the engine's verdict contradicts
/// evaluation on a concrete legal state, shrunk (if enabled) to a locally
/// minimal triple.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What kind of claim was contradicted.
    pub kind: ViolationKind,
    /// The schema of the failing triple.
    pub schema: Schema,
    /// The (possibly shrunk) left query.
    pub q1: Query,
    /// The (possibly shrunk) right query.
    pub q2: Query,
    /// The (possibly shrunk) witness state.
    pub state: State,
    /// An object in `Q₁(state)` that `Q₂(state)` misses (for
    /// [`ViolationKind::Vacuity`]: any object answering the "unsatisfiable"
    /// `Q₁`).
    pub witness: Oid,
    /// Accepted shrink steps that produced this triple.
    pub shrink_steps: usize,
    /// A replayable workbench program whose `check Q1 <= Q2` reproduces
    /// the engine verdict under dispute.
    pub program: String,
}

impl Violation {
    pub(crate) fn new(
        kind: ViolationKind,
        schema: &Schema,
        q1: Query,
        q2: Query,
        state: State,
        witness: Oid,
        shrink_steps: usize,
    ) -> Violation {
        let program = render_program(schema, &q1, &q2);
        Violation {
            kind,
            schema: schema.clone(),
            q1,
            q2,
            state,
            witness,
            shrink_steps,
            program,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "soundness violation ({}) — witness {} after {} shrink step(s)",
            self.kind, self.witness, self.shrink_steps
        )?;
        writeln!(f, "{}", self.program)?;
        write!(f, "on state:\n{}", self.state.display(&self.schema))
    }
}

/// Render a `(schema, Q₁, Q₂)` triple as a workbench program that replays
/// the disputed decision.
pub(crate) fn render_program(schema: &Schema, q1: &Query, q2: &Query) -> String {
    format!(
        "schema {{\n{}}}\nquery Q1 = {}\nquery Q2 = {}\ncheck Q1 <= Q2",
        schema,
        q1.display(schema),
        q2.display(schema),
    )
}

/// Does the disagreement persist on this candidate triple? Returns the
/// re-derived witness if so.
fn violates(
    engine: &Engine,
    kind: ViolationKind,
    schema: &Schema,
    q1: &Query,
    q2: &Query,
    state: &State,
    eval_budget: u64,
) -> Option<Oid> {
    let ps = engine.prepare_schema(schema);
    let p1 = engine.prepare(&ps, q1);
    let p2 = engine.prepare(&ps, q2);
    let verdict = engine.decide(&p1, &p2).ok()?;
    let budget = if eval_budget == 0 {
        Budget::unlimited()
    } else {
        Budget::with_limit(eval_budget)
    };
    let mut charge = |u| budget.charge(u);
    match kind {
        ViolationKind::Containment => {
            if !verdict.holds() {
                return None;
            }
            let a1 = answer_budgeted(schema, state, q1, &mut charge).ok()?;
            let a2 = answer_budgeted(schema, state, q2, &mut charge).ok()?;
            a1.difference(&a2).next().copied()
        }
        ViolationKind::Vacuity => {
            if !matches!(verdict, Containment::HoldsVacuously(_)) {
                return None;
            }
            let a1 = answer_budgeted(schema, state, q1, &mut charge).ok()?;
            a1.iter().next().copied()
        }
    }
}

/// Rebuild a query with the same variables but a different atom list.
fn rebuild(q: &Query, atoms: impl IntoIterator<Item = Atom>) -> Query {
    let mut b = QueryBuilder::new(q.var_name(q.free_var()));
    let mut ids = Vec::with_capacity(q.var_count());
    for v in q.vars() {
        if v == q.free_var() {
            ids.push(b.free());
        } else {
            ids.push(b.var(q.var_name(v)));
        }
    }
    for a in atoms {
        b.atom(a.map_vars(|v| ids[v.index()]));
    }
    b.build()
}

/// Every query obtained by dropping exactly one atom.
fn drop_one_atom(q: &Query) -> Vec<Query> {
    (0..q.atoms().len())
        .map(|skip| {
            rebuild(
                q,
                q.atoms()
                    .iter()
                    .enumerate()
                    .filter(|(ix, _)| *ix != skip)
                    .map(|(_, a)| a.clone()),
            )
        })
        .collect()
}

/// Every query obtained by merging one variable into another.
fn merge_one_pair(q: &Query) -> Vec<Query> {
    let vars: Vec<VarId> = q.vars().collect();
    let mut out = Vec::new();
    for &keep in &vars {
        for &gone in &vars {
            if keep == gone {
                continue;
            }
            let map: Vec<VarId> = q.vars().map(|v| if v == gone { keep } else { v }).collect();
            out.push(q.apply_mapping(&map));
        }
    }
    out
}

/// Every state obtained by deleting one object (references to it are
/// nulled for object attributes and removed from set attributes).
fn drop_one_object(schema: &Schema, state: &State) -> Vec<State> {
    state
        .oids()
        .map(|gone| {
            let mut b = StateBuilder::new();
            let survivors: Vec<Oid> = state.oids().filter(|&o| o != gone).collect();
            let remap = |o: Oid| -> Option<Oid> {
                survivors.iter().position(|&s| s == o).map(Oid::from_index)
            };
            for &o in &survivors {
                b.object(state.class_of(o));
            }
            for &o in &survivors {
                let new_o = remap(o).expect("survivor remaps");
                let attrs: Vec<_> = schema
                    .effective_type(state.class_of(o))
                    .iter()
                    .map(|(&a, &t)| (a, t))
                    .collect();
                for (a, t) in attrs {
                    match (state.attr(o, a), t) {
                        (Value::Obj(tgt), _) => {
                            if let Some(nt) = remap(*tgt) {
                                b.set_obj(new_o, a, nt);
                            }
                        }
                        (Value::Set(ms), _) => {
                            b.set_members(new_o, a, ms.iter().filter_map(|&m| remap(m)));
                        }
                        (Value::Null, AttrType::Object(_) | AttrType::SetOf(_)) => {}
                    }
                }
            }
            b.finish(schema)
                .expect("deleting an object preserves legality")
        })
        .collect()
}

/// Shrink a violation to a local minimum: repeatedly apply the first
/// accepted reduction (atom drop, variable merge, object delete) until no
/// reducer applies or `max_steps` reductions were accepted.
#[allow(clippy::too_many_arguments)]
pub(crate) fn shrink_violation(
    engine: &Engine,
    kind: ViolationKind,
    schema: &Schema,
    mut q1: Query,
    mut q2: Query,
    mut state: State,
    mut witness: Oid,
    eval_budget: u64,
    max_steps: usize,
) -> Violation {
    let mut steps = 0;
    'outer: while steps < max_steps {
        // 1. Drop an atom from either query.
        for (left, cands) in [(true, drop_one_atom(&q1)), (false, drop_one_atom(&q2))] {
            for cand in cands {
                let (c1, c2) = if left { (&cand, &q2) } else { (&q1, &cand) };
                if let Some(w) = violates(engine, kind, schema, c1, c2, &state, eval_budget) {
                    if left {
                        q1 = cand;
                    } else {
                        q2 = cand;
                    }
                    witness = w;
                    steps += 1;
                    continue 'outer;
                }
            }
        }
        // 2. Merge a variable pair in either query.
        for (left, cands) in [(true, merge_one_pair(&q1)), (false, merge_one_pair(&q2))] {
            for cand in cands {
                let (c1, c2) = if left { (&cand, &q2) } else { (&q1, &cand) };
                if let Some(w) = violates(engine, kind, schema, c1, c2, &state, eval_budget) {
                    if left {
                        q1 = cand;
                    } else {
                        q2 = cand;
                    }
                    witness = w;
                    steps += 1;
                    continue 'outer;
                }
            }
        }
        // 3. Delete a state object.
        for cand in drop_one_object(schema, &state) {
            if let Some(w) = violates(engine, kind, schema, &q1, &q2, &cand, eval_budget) {
                state = cand;
                witness = w;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    Violation::new(kind, schema, q1, q2, state, witness, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_schema::samples;

    fn rental_query(schema: &Schema) -> Query {
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [schema.class_id("Auto").unwrap()]);
        b.range(y, [schema.class_id("Discount").unwrap()]);
        b.member(x, y, schema.attr_id("VehRented").unwrap());
        b.build()
    }

    #[test]
    fn drop_one_atom_yields_one_candidate_per_atom() {
        let s = samples::vehicle_rental();
        let q = rental_query(&s);
        let cands = drop_one_atom(&q);
        assert_eq!(cands.len(), q.atoms().len());
        for c in &cands {
            assert_eq!(c.atoms().len(), q.atoms().len() - 1);
            assert_eq!(c.var_count(), q.var_count(), "variables must survive");
        }
    }

    #[test]
    fn merge_one_pair_reduces_the_variable_count() {
        let s = samples::vehicle_rental();
        let q = rental_query(&s);
        let cands = merge_one_pair(&q);
        assert_eq!(cands.len(), 2); // (x<-y) and (y<-x)
        for c in &cands {
            assert!(c.var_count() < q.var_count(), "merge must drop a variable");
        }
    }

    #[test]
    fn drop_one_object_nulls_dangling_references() {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        let d = b.object(s.class_id("Discount").unwrap());
        let a1 = b.object(s.class_id("Auto").unwrap());
        let a2 = b.object(s.class_id("Auto").unwrap());
        let veh = s.attr_id("VehRented").unwrap();
        b.set_members(d, veh, [a1, a2]);
        let st = b.finish(&s).unwrap();

        let cands = drop_one_object(&s, &st);
        assert_eq!(cands.len(), 3);
        for c in &cands {
            assert_eq!(c.object_count(), 2);
        }
        // Dropping the first Auto (oid index 1) keeps the Discount's set
        // with only the surviving member (renumbered).
        let without_a1 = &cands[1];
        let remaining: Vec<Oid> = match without_a1.attr(Oid::from_index(0), veh) {
            Value::Set(ms) => ms.clone(),
            v => panic!("expected a set, got {v:?}"),
        };
        assert_eq!(remaining, vec![Oid::from_index(1)]);
    }

    #[test]
    fn render_program_replays_through_the_parser() {
        let s = samples::vehicle_rental();
        let q = rental_query(&s);
        let program = render_program(&s, &q, &q);
        assert!(program.contains("check Q1 <= Q2"));
        assert!(program.starts_with("schema {"));
    }
}

//! Seeded pair generation for oracle sweeps.
//!
//! Mirrors the property-test workload (`tests/properties.rs`): rotate
//! through the paper's sample schemas plus a random one, generate terminal
//! positive query cores, and append random negative atoms (inequalities
//! and non-memberships) so every strategy tier of the engine is exercised.
//! Everything is a pure function of the seed, so a reported seed replays
//! without a shrinker dependency.

use oocq_gen::{
    constrained_schema, random_schema, random_terminal_positive, ConstraintParams, QueryParams,
    Rng, SchemaParams, StdRng,
};
use oocq_query::{Atom, Query, Term};
use oocq_schema::{samples, Schema};

/// The schema for a sweep seed: the three paper samples in rotation, plus
/// a seeded random schema every fourth seed.
pub fn sweep_schema(seed: u64) -> Schema {
    match seed % 4 {
        0 => samples::vehicle_rental(),
        1 => samples::n1_partition(),
        2 => samples::example_31(),
        _ => random_schema(
            &mut StdRng::seed_from_u64(seed),
            &SchemaParams {
                roots: 2,
                branching: 2,
                object_attrs: 2,
                set_attrs: 1,
                refine_prob: 0.4,
            },
        ),
    }
}

/// Append `count` random negative atoms (inequalities / non-memberships)
/// to a terminal positive query, producing a general terminal query. Only
/// set-typed attributes appear on the right of `∉`, keeping the query
/// well-formed.
pub fn add_negative_atoms(rng: &mut impl Rng, schema: &Schema, q: &Query, count: usize) -> Query {
    let mut extra = Vec::new();
    let vars: Vec<_> = q.vars().collect();
    for _ in 0..count {
        let i = vars[rng.gen_range(0..vars.len())];
        let j = vars[rng.gen_range(0..vars.len())];
        if rng.gen_bool(0.6) {
            if i != j {
                extra.push(Atom::Neq(Term::Var(i), Term::Var(j)));
            }
        } else if let Some([cls]) = q.range_of(j) {
            let set_attrs: Vec<_> = schema
                .effective_type(*cls)
                .iter()
                .filter(|(_, t)| t.is_set())
                .map(|(&a, _)| a)
                .collect();
            if !set_attrs.is_empty() {
                let a = set_attrs[rng.gen_range(0..set_attrs.len())];
                extra.push(Atom::NonMember(i, j, a));
            }
        }
    }
    q.with_extra_atoms(extra)
}

/// The `(schema, Q₁, Q₂)` pair for a sweep seed.
pub fn sweep_pair(seed: u64, query: &QueryParams, negative_atoms: usize) -> (Schema, Query, Query) {
    let schema = sweep_schema(seed);
    pair_on(schema, seed, query, negative_atoms)
}

/// The constrained `(schema, Q₁, Q₂)` pair for a sweep seed: a seeded
/// random schema with declared `disjoint`/`total`/`functional` constraints
/// (and multiple-inheritance diamonds for disjointness to kill), queried
/// the same way as [`sweep_pair`]. Queries may range over dead terminals —
/// deliberately, so the sweep exercises the vacuous and dead-branch
/// verdict paths of the constraint theory too.
pub fn sweep_constrained_pair(
    seed: u64,
    query: &QueryParams,
    negative_atoms: usize,
) -> (Schema, Query, Query) {
    let schema = constrained_schema(
        &mut StdRng::seed_from_u64(seed),
        &SchemaParams {
            roots: 3,
            branching: 2,
            object_attrs: 2,
            set_attrs: 1,
            refine_prob: 0.0,
        },
        &ConstraintParams {
            disjoint: 1,
            total: 1,
            functional: 1,
            multi_parent_prob: 0.3,
        },
    );
    pair_on(schema, seed, query, negative_atoms)
}

fn pair_on(
    schema: Schema,
    seed: u64,
    query: &QueryParams,
    negative_atoms: usize,
) -> (Schema, Query, Query) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x07ac1e);
    let base1 = random_terminal_positive(&mut rng, &schema, query);
    let base2 = random_terminal_positive(&mut rng, &schema, query);
    let q1 = add_negative_atoms(&mut rng, &schema, &base1, negative_atoms);
    let q2 = add_negative_atoms(&mut rng, &schema, &base2, negative_atoms);
    (schema, q1, q2)
}

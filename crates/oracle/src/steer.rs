//! Certificate-steered witness synthesis.
//!
//! The completeness direction of Theorem 3.1 is constructive: if some
//! consistent augmentation branch `Q₁ & S & W` admits no non-contradictory
//! mapping from `Q₂`, then the *frozen* (canonical) state of that branch —
//! one object per equivalence class of variables, memberships exactly as
//! written — answers `Q₁` at its frozen free object while `Q₂` misses it.
//! So the engine's refutation certificate is not just evidence, it is a
//! recipe: freeze the branch, definitize the leftover nulls, and evaluate.
//!
//! Null handling is the delicate part. Under the 3-valued semantics a null
//! set-valued attribute makes `x ∉ y.A` *unknown*, which prunes the
//! assignment — for `Q₁` and `Q₂` alike. Freezing such nulls to the empty
//! set ("definitizing") makes those non-memberships definitely true, which
//! `Q₁` may need to answer at all, but which can equally hand `Q₂` the
//! atoms it was missing and destroy the separation. Neither choice
//! dominates globally — and no *uniform* choice dominates even per state:
//! when both queries carry `∉` atoms over the *same attribute but
//! different owners* (the double-`NonMember` shape), `Q₁` needs its own
//! slot frozen empty while `Q₂`'s must stay null. So [`steer_witness`]
//! runs a portfolio over per-obligation definitization: the raw frozen
//! skeleton first (all nulls intact), then each small subset of the
//! branch's own `∉` slots frozen to the empty set (smallest subsets
//! first, so `Q₂` is handed as little as possible), and finally the fully
//! definitized skeleton as the historical envelope. Inequalities need no
//! help either way — distinct equivalence classes freeze to distinct
//! oids, and branch consistency guarantees the augmentation never merges
//! variables a `≠` atom separates.

use oocq_eval::{answer_budgeted, canonical_state_mapped};
use oocq_gen::{steered_state, Rng, SteerParams};
use oocq_query::{Atom, Query, QueryBuilder, VarId};
use oocq_schema::{AttrId, Schema};
use oocq_state::{Oid, State, StateBuilder, Value};

/// The positive part of a query: range, equality, and membership atoms
/// only, with every variable (and its name) preserved.
pub fn positive_part(q: &Query) -> Query {
    positive_part_mapped(q).0
}

/// [`positive_part`] plus the variable map: element `i` is the id the
/// source query's variable `i` carries in the returned query. The builder
/// pins the free variable at index 0, so when the source free variable
/// sits elsewhere the map is a genuine permutation, not the identity —
/// callers tracing source variables into the positive part must go
/// through it.
pub fn positive_part_mapped(q: &Query) -> (Query, Vec<VarId>) {
    let mut b = QueryBuilder::new(q.var_name(q.free_var()));
    let mut ids = Vec::with_capacity(q.var_count());
    for v in q.vars() {
        if v == q.free_var() {
            ids.push(b.free());
        } else {
            ids.push(b.var(q.var_name(v)));
        }
    }
    for a in q.atoms() {
        if a.is_positive() {
            b.atom(a.clone().map_vars(|v| ids[v.index()]));
        }
    }
    (b.build(), ids)
}

/// Bound on `∉` slots before subset enumeration collapses to the full
/// set only (2^k candidate states would dominate the eval budget).
const MAX_SLOT_SUBSETS: usize = 3;

/// Copy a frozen skeleton, freezing the chosen null set-valued slots to
/// the empty set and leaving every other null intact.
fn definitize_slots(schema: &Schema, skeleton: &State, chosen: &[(Oid, AttrId)]) -> State {
    let mut b = StateBuilder::new();
    for o in skeleton.oids() {
        b.object(skeleton.class_of(o));
    }
    for o in skeleton.oids() {
        let attrs: Vec<AttrId> = schema
            .effective_type(skeleton.class_of(o))
            .keys()
            .copied()
            .collect();
        for a in attrs {
            match skeleton.attr(o, a) {
                Value::Obj(t) => {
                    b.set_obj(o, a, *t);
                }
                Value::Set(ms) => {
                    b.set_members(o, a, ms.iter().copied());
                }
                Value::Null if chosen.contains(&(o, a)) => {
                    b.set_members(o, a, []);
                }
                Value::Null => {}
            }
        }
    }
    b.finish(schema)
        .expect("definitized skeleton stays legal: only empty sets were added")
}

/// Synthesize and verify a witness state for a claimed refutation of
/// `q1 ⊆ q2`, steered by the failing branch's augmentation atoms (in
/// `q1`'s variable ids; empty for the branch that is `Q₁` itself).
///
/// Returns `Ok(Some((state, oid)))` iff the steered state *actually*
/// witnesses `oid ∈ q1(state) \ q2(state)` under evaluation — the caller
/// never needs to trust this module, only `oocq-eval`. `Ok(None)` means
/// steering was inapplicable (no canonical state for the branch's positive
/// part) or the synthesized state failed to confirm.
pub fn steer_witness<E>(
    schema: &Schema,
    q1: &Query,
    q2: &Query,
    augmentation: &[Atom],
    steer: &SteerParams,
    rng: &mut impl Rng,
    charge: &mut impl FnMut(u64) -> Result<(), E>,
) -> Result<Option<(State, Oid)>, E> {
    let branch = q1.with_extra_atoms(augmentation.iter().cloned());
    let (positive, var_map) = positive_part_mapped(&branch);
    let Some((skeleton, witness, var_oids)) = canonical_state_mapped(schema, &positive) else {
        return Ok(None);
    };
    // The branch's own `∉` obligations, as frozen (owner oid, attribute)
    // slots that the skeleton left null. These are exactly the slots whose
    // individual definitization can make `Q₁`'s non-memberships definite
    // without touching the slots `Q₂`'s `∉` atoms need to stay unknown.
    let mut slots: Vec<(Oid, AttrId)> = Vec::new();
    for atom in branch.atoms() {
        if let Atom::NonMember(_, owner, attr) = atom {
            let slot = (var_oids[var_map[owner.index()].index()], *attr);
            if skeleton.attr(slot.0, slot.1).is_null() && !slots.contains(&slot) {
                slots.push(slot);
            }
        }
    }
    // Candidate skeletons, least definitized first: raw, then `∉`-slot
    // subsets by ascending size, then everything (the historical envelope).
    let mut candidates: Vec<(State, bool)> = vec![(skeleton.clone(), false)];
    if slots.len() <= MAX_SLOT_SUBSETS {
        let mut masks: Vec<u32> = (1..1u32 << slots.len()).collect();
        masks.sort_by_key(|m| m.count_ones());
        for mask in masks {
            let chosen: Vec<(Oid, AttrId)> = slots
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask & (1 << i) != 0)
                .map(|(_, &s)| s)
                .collect();
            candidates.push((definitize_slots(schema, &skeleton, &chosen), false));
        }
    } else if !slots.is_empty() {
        candidates.push((definitize_slots(schema, &skeleton, &slots), false));
    }
    candidates.push((skeleton.clone(), true));
    for (skel, definitize) in candidates {
        let p = SteerParams {
            definitize,
            ..*steer
        };
        let state = steered_state(rng, schema, &skel, &p);
        let a1 = answer_budgeted(schema, &state, q1, charge)?;
        if !a1.contains(&witness) {
            continue;
        }
        let a2 = answer_budgeted(schema, &state, q2, charge)?;
        if a2.contains(&witness) {
            continue;
        }
        return Ok(Some((state, witness)));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use crate::sweep::sweep_pair;
    use crate::{Oracle, OracleConfig, Outcome};
    use oocq_gen::StdRng;

    /// The formerly known steering holdout (DESIGN.md §"steered witness
    /// synthesis"): when *both* queries carry `NonMember` over the same
    /// attribute but different owners, no uniform null treatment
    /// separates them — the raw frozen skeleton leaves `Q₁`'s own set
    /// null (its `∉` stays unknown and it never answers), and wholesale
    /// definitization freezes `Q₂`'s slot empty too (its `∉` becomes true
    /// and the separation collapses). The per-obligation portfolio closes
    /// the gap: definitizing only `Q₁`'s obligation slot makes its `∉`
    /// definitely true while `Q₂`'s slot stays null and unknown.
    ///
    /// Sweep seed 342 pins the shape: `Q₁` has `v2 ∉ v1.B`, `Q₂` has
    /// `v2 ∉ v0.B`. Steering must now confirm this refutation itself —
    /// no random-search fallback.
    #[test]
    fn double_nonmember_shape_is_confirmed_by_steering() {
        let seed = 342u64;
        let mut oracle = Oracle::new(OracleConfig::default());
        let (schema, q1, q2) = sweep_pair(
            seed,
            &oracle.config().query.clone(),
            oracle.config().negative_atoms,
        );
        let same_attr_nonmembers = |q: &oocq_query::Query| {
            q.atoms()
                .iter()
                .filter(|a| matches!(a, oocq_query::Atom::NonMember(..)))
                .count()
        };
        assert!(same_attr_nonmembers(&q1) >= 1 && same_attr_nonmembers(&q2) >= 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0bbedfeed);
        let outcome = oracle.check_pair(&schema, &q1, &q2, &mut rng);
        assert!(
            matches!(outcome, Outcome::RefutedConfirmed { steered: true }),
            "expected a steered confirmation, got {outcome:?}"
        );
    }
}

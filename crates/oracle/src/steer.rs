//! Certificate-steered witness synthesis.
//!
//! The completeness direction of Theorem 3.1 is constructive: if some
//! consistent augmentation branch `Q₁ & S & W` admits no non-contradictory
//! mapping from `Q₂`, then the *frozen* (canonical) state of that branch —
//! one object per equivalence class of variables, memberships exactly as
//! written — answers `Q₁` at its frozen free object while `Q₂` misses it.
//! So the engine's refutation certificate is not just evidence, it is a
//! recipe: freeze the branch, definitize the leftover nulls, and evaluate.
//!
//! Null handling is the delicate part. Under the 3-valued semantics a null
//! set-valued attribute makes `x ∉ y.A` *unknown*, which prunes the
//! assignment — for `Q₁` and `Q₂` alike. Freezing such nulls to the empty
//! set ("definitizing") makes those non-memberships definitely true, which
//! `Q₁` may need to answer at all, but which can equally hand `Q₂` the
//! atoms it was missing and destroy the separation. Neither choice
//! dominates, so [`steer_witness`] tries the portfolio: the raw frozen
//! skeleton first (nulls intact — `Q₂`'s `∉` atoms stay unknown), then the
//! definitized one (for a `Q₁` whose own `∉` atoms need the empty sets).
//! Inequalities need no help either way — distinct equivalence classes
//! freeze to distinct oids, and branch consistency guarantees the
//! augmentation never merges variables a `≠` atom separates.

use oocq_eval::{answer_budgeted, canonical_state};
use oocq_gen::{steered_state, Rng, SteerParams};
use oocq_query::{Atom, Query, QueryBuilder};
use oocq_schema::Schema;
use oocq_state::{Oid, State};

/// The positive part of a query: range, equality, and membership atoms
/// only, with every variable (and its name) preserved.
pub fn positive_part(q: &Query) -> Query {
    let mut b = QueryBuilder::new(q.var_name(q.free_var()));
    let mut ids = Vec::with_capacity(q.var_count());
    for v in q.vars() {
        if v == q.free_var() {
            ids.push(b.free());
        } else {
            ids.push(b.var(q.var_name(v)));
        }
    }
    for a in q.atoms() {
        if a.is_positive() {
            b.atom(a.clone().map_vars(|v| ids[v.index()]));
        }
    }
    b.build()
}

/// Synthesize and verify a witness state for a claimed refutation of
/// `q1 ⊆ q2`, steered by the failing branch's augmentation atoms (in
/// `q1`'s variable ids; empty for the branch that is `Q₁` itself).
///
/// Returns `Ok(Some((state, oid)))` iff the steered state *actually*
/// witnesses `oid ∈ q1(state) \ q2(state)` under evaluation — the caller
/// never needs to trust this module, only `oocq-eval`. `Ok(None)` means
/// steering was inapplicable (no canonical state for the branch's positive
/// part) or the synthesized state failed to confirm.
pub fn steer_witness<E>(
    schema: &Schema,
    q1: &Query,
    q2: &Query,
    augmentation: &[Atom],
    steer: &SteerParams,
    rng: &mut impl Rng,
    charge: &mut impl FnMut(u64) -> Result<(), E>,
) -> Result<Option<(State, Oid)>, E> {
    let branch = q1.with_extra_atoms(augmentation.iter().cloned());
    let Some((skeleton, witness)) = canonical_state(schema, &positive_part(&branch)) else {
        return Ok(None);
    };
    for definitize in [false, true] {
        let p = SteerParams {
            definitize,
            ..*steer
        };
        let state = steered_state(rng, schema, &skeleton, &p);
        let a1 = answer_budgeted(schema, &state, q1, charge)?;
        if !a1.contains(&witness) {
            continue;
        }
        let a2 = answer_budgeted(schema, &state, q2, charge)?;
        if a2.contains(&witness) {
            continue;
        }
        return Ok(Some((state, witness)));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use crate::sweep::sweep_pair;
    use crate::{Oracle, OracleConfig, Outcome};
    use oocq_gen::StdRng;

    /// The known steering holdout (DESIGN.md §"steered witness synthesis"):
    /// when *both* queries carry `NonMember` over the same attribute, the
    /// separating state needs that set non-empty yet avoiding specific
    /// members. Neither arm of the portfolio produces it — the raw frozen
    /// skeleton leaves the set null (so `Q₁`'s own `∉` stays unknown and it
    /// never answers), and definitizing freezes it to the *empty* set (so
    /// `Q₂`'s `∉` becomes true as well and the separation collapses). Only
    /// the random-search fallback finds the in-between state.
    ///
    /// Sweep seed 342 pins the shape: `Q₁` has `v2 ∉ v1.B`, `Q₂` has
    /// `v2 ∉ v0.B`. This fixture documents the limitation rather than
    /// guarding a contract, so it is `#[ignore]`d out of the default run;
    /// if a future steering improvement flips the outcome to
    /// `steered: true`, celebrate and retire it.
    #[test]
    #[ignore = "documents the double-NonMember steering holdout, not a contract"]
    fn double_nonmember_holdout_falls_back_to_random_search() {
        let seed = 342u64;
        let mut oracle = Oracle::new(OracleConfig::default());
        let (schema, q1, q2) = sweep_pair(
            seed,
            &oracle.config().query.clone(),
            oracle.config().negative_atoms,
        );
        let same_attr_nonmembers = |q: &oocq_query::Query| {
            q.atoms()
                .iter()
                .filter(|a| matches!(a, oocq_query::Atom::NonMember(..)))
                .count()
        };
        assert!(same_attr_nonmembers(&q1) >= 1 && same_attr_nonmembers(&q2) >= 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0bbedfeed);
        let outcome = oracle.check_pair(&schema, &q1, &q2, &mut rng);
        assert!(
            matches!(outcome, Outcome::RefutedConfirmed { steered: false }),
            "expected the unsteered fallback confirmation, got {outcome:?}"
        );
    }
}

//! # oocq-state
//!
//! OODB states for the model of Chan (PODS 1992): object identifiers,
//! objects with terminal classes and attribute values (including the null
//! value `Λ` of §2.2), class extents under the Terminal Class Partitioning
//! Assumption, and legal-state validation against a schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dump;
mod error;
mod state;
mod value;

pub use dump::{DisplayState, StateStats};
pub use error::StateError;
pub use state::{Object, State, StateBuilder};
pub use value::{Oid, Value};

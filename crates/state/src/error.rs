//! Errors raised by legal-state validation.

use crate::value::Oid;
use std::error::Error;
use std::fmt;

/// Ways a state can fail validation against a schema.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StateError {
    /// An object was created in a non-terminal class, violating the
    /// Terminal Class Partitioning Assumption.
    NonTerminalClass {
        /// The offending object.
        oid: Oid,
        /// Its declared class.
        class: String,
    },
    /// An attribute was set that the object's class does not possess.
    UnknownAttribute {
        /// The offending object.
        oid: Oid,
        /// Its class.
        class: String,
        /// The undeclared attribute.
        attr: String,
    },
    /// An object value was given for a set attribute or vice versa.
    KindMismatch {
        /// The offending object.
        oid: Oid,
        /// The attribute.
        attr: String,
        /// Whether the schema declares the attribute as set-valued.
        declared_set: bool,
    },
    /// A referenced oid does not exist in the state.
    DanglingOid {
        /// The referencing object.
        oid: Oid,
        /// The missing reference.
        target: Oid,
    },
    /// A referenced object's class is not a subclass of the attribute's
    /// declared class.
    ClassMismatch {
        /// The referencing object.
        oid: Oid,
        /// The referenced object.
        target: Oid,
        /// The referenced object's class.
        found: String,
        /// The class required by the attribute type.
        expected: String,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::NonTerminalClass { oid, class } => {
                write!(f, "object {oid} instantiates non-terminal class `{class}`")
            }
            StateError::UnknownAttribute { oid, class, attr } => {
                write!(
                    f,
                    "object {oid} of class `{class}` has no attribute `{attr}`"
                )
            }
            StateError::KindMismatch {
                oid,
                attr,
                declared_set,
            } => {
                let want = if *declared_set { "a set" } else { "an object" };
                write!(f, "attribute `{attr}` of {oid} must hold {want} value")
            }
            StateError::DanglingOid { oid, target } => {
                write!(f, "object {oid} references nonexistent object {target}")
            }
            StateError::ClassMismatch {
                oid,
                target,
                found,
                expected,
            } => write!(
                f,
                "object {oid} references {target} of class `{found}` where a \
                 subclass of `{expected}` is required"
            ),
        }
    }
}

impl Error for StateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_oids() {
        let e = StateError::DanglingOid {
            oid: Oid::from_index(1),
            target: Oid::from_index(7),
        };
        let s = e.to_string();
        assert!(s.contains("o1") && s.contains("o7"));
    }
}

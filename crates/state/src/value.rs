//! Object identifiers and attribute values.

use std::fmt;

/// An object identifier. Oids are dense indices into a
/// [`State`](crate::State)'s object table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub(crate) u32);

impl Oid {
    /// Dense index of this oid.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from an index previously obtained via [`Oid::index`].
    #[inline]
    pub fn from_index(ix: usize) -> Oid {
        Oid(u32::try_from(ix).expect("oid index exceeds u32"))
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// The value of an attribute component of an object.
///
/// §2.2 introduces the null value `Λ` as a possible attribute value; with
/// nulls present, queries are evaluated in 3-valued logic. A set-valued
/// attribute may be null (`Λ`, unknown set) or an actual — possibly empty —
/// set; the two behave differently under (non-)membership.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// The null value `Λ`.
    Null,
    /// An object reference (for object-typed attributes).
    Obj(Oid),
    /// A set object (for set-typed attributes); members sorted, deduplicated.
    Set(Vec<Oid>),
}

impl Value {
    /// Build a set value from arbitrary members (sorted and deduplicated).
    pub fn set(members: impl IntoIterator<Item = Oid>) -> Value {
        let mut v: Vec<Oid> = members.into_iter().collect();
        v.sort();
        v.dedup();
        Value::Set(v)
    }

    /// Is this the null value `Λ`?
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Membership test; `None` means *unknown* (the value is null or not a
    /// set, so 3-valued logic applies).
    pub fn contains(&self, o: Oid) -> Option<bool> {
        match self {
            Value::Set(ms) => Some(ms.binary_search(&o).is_ok()),
            Value::Null | Value::Obj(_) => None,
        }
    }

    /// The referenced object for object-valued attributes; `None` when null
    /// or a set.
    pub fn as_obj(&self) -> Option<Oid> {
        match self {
            Value::Obj(o) => Some(*o),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_sorts_and_dedups() {
        let v = Value::set([Oid(3), Oid(1), Oid(3), Oid(2)]);
        assert_eq!(v, Value::Set(vec![Oid(1), Oid(2), Oid(3)]));
    }

    #[test]
    fn contains_is_three_valued() {
        assert_eq!(Value::set([Oid(1)]).contains(Oid(1)), Some(true));
        assert_eq!(Value::set([Oid(1)]).contains(Oid(2)), Some(false));
        assert_eq!(Value::Null.contains(Oid(1)), None);
        assert_eq!(Value::Obj(Oid(0)).contains(Oid(0)), None);
    }

    #[test]
    fn as_obj_only_on_object_values() {
        assert_eq!(Value::Obj(Oid(4)).as_obj(), Some(Oid(4)));
        assert_eq!(Value::Null.as_obj(), None);
        assert_eq!(Value::set([]).as_obj(), None);
    }

    #[test]
    fn oid_round_trip() {
        assert_eq!(Oid::from_index(9).index(), 9);
    }
}

//! Human-readable state dumps and statistics.

use crate::state::State;
use crate::value::Value;
use oocq_schema::Schema;
use std::collections::BTreeMap;
use std::fmt;

/// A state paired with its schema for rendering; implements
/// [`fmt::Display`].
pub struct DisplayState<'a> {
    state: &'a State,
    schema: &'a Schema,
}

impl State {
    /// Render the state object-by-object with resolved names.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> DisplayState<'a> {
        DisplayState {
            state: self,
            schema,
        }
    }

    /// Per-terminal-class object counts plus aggregate attribute statistics.
    pub fn statistics(&self, schema: &Schema) -> StateStats {
        let mut per_class: BTreeMap<String, usize> = BTreeMap::new();
        let mut null_attrs = 0usize;
        let mut object_attrs = 0usize;
        let mut set_attrs = 0usize;
        let mut set_members = 0usize;
        for o in self.oids() {
            let c = self.class_of(o);
            *per_class
                .entry(schema.class_name(c).to_owned())
                .or_insert(0) += 1;
            for &a in schema.effective_type(c).keys() {
                match self.attr(o, a) {
                    Value::Null => null_attrs += 1,
                    Value::Obj(_) => object_attrs += 1,
                    Value::Set(ms) => {
                        set_attrs += 1;
                        set_members += ms.len();
                    }
                }
            }
        }
        StateStats {
            objects: self.object_count(),
            per_class,
            null_attrs,
            object_attrs,
            set_attrs,
            set_members,
        }
    }
}

/// Aggregate statistics of a state (see [`State::statistics`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateStats {
    /// Total object count.
    pub objects: usize,
    /// Objects per terminal class name.
    pub per_class: BTreeMap<String, usize>,
    /// Attribute slots holding `Λ`.
    pub null_attrs: usize,
    /// Attribute slots holding an object reference.
    pub object_attrs: usize,
    /// Attribute slots holding a set.
    pub set_attrs: usize,
    /// Total members across all set slots.
    pub set_members: usize,
}

impl fmt::Display for StateStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} objects (", self.objects)?;
        for (i, (name, n)) in self.per_class.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {n}")?;
        }
        write!(
            f,
            "); attrs: {} obj, {} set ({} members), {} null",
            self.object_attrs, self.set_attrs, self.set_members, self.null_attrs
        )
    }
}

impl fmt::Display for DisplayState<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for o in self.state.oids() {
            let c = self.state.class_of(o);
            write!(f, "{o}: {}", self.schema.class_name(c))?;
            let mut first = true;
            for &a in self.schema.effective_type(c).keys() {
                let v = self.state.attr(o, a);
                if v.is_null() {
                    continue;
                }
                write!(f, "{}", if first { " { " } else { ", " })?;
                first = false;
                match v {
                    Value::Obj(t) => write!(f, "{} = {t}", self.schema.attr_name(a))?,
                    Value::Set(ms) => {
                        let items: Vec<String> = ms.iter().map(|m| m.to_string()).collect();
                        write!(f, "{} = {{{}}}", self.schema.attr_name(a), items.join(", "))?;
                    }
                    Value::Null => unreachable!(),
                }
            }
            if !first {
                write!(f, " }}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::state::StateBuilder;
    use oocq_schema::samples;

    #[test]
    fn dump_renders_objects_and_values() {
        let s = samples::vehicle_rental();
        let veh = s.attr_id("VehRented").unwrap();
        let mut b = StateBuilder::new();
        let a = b.object(s.class_id("Auto").unwrap());
        let d = b.object(s.class_id("Discount").unwrap());
        b.set_members(d, veh, [a]);
        let st = b.finish(&s).unwrap();
        let text = st.display(&s).to_string();
        assert!(text.contains("o0: Auto"));
        assert!(text.contains("o1: Discount { VehRented = {o0} }"));
    }

    #[test]
    fn statistics_count_kinds() {
        let s = samples::vehicle_rental();
        let veh = s.attr_id("VehRented").unwrap();
        let assigned = s.attr_id("AssignedTo").unwrap();
        let mut b = StateBuilder::new();
        let a = b.object(s.class_id("Auto").unwrap());
        let d = b.object(s.class_id("Discount").unwrap());
        b.set_members(d, veh, [a]);
        b.set_obj(a, assigned, d);
        let st = b.finish(&s).unwrap();
        let stats = st.statistics(&s);
        assert_eq!(stats.objects, 2);
        assert_eq!(stats.per_class["Auto"], 1);
        assert_eq!(stats.object_attrs, 1);
        assert_eq!(stats.set_attrs, 1);
        assert_eq!(stats.set_members, 1);
        // Discount also has AssignedTo? No — AssignedTo is on Vehicle.
        // Null slots: none remaining for Auto; Discount has none unset? It
        // has VehRented set. So zero nulls.
        assert_eq!(stats.null_attrs, 0);
        let text = stats.to_string();
        assert!(text.contains("2 objects"));
        assert!(text.contains("Auto: 1"));
    }

    #[test]
    fn null_slots_are_counted() {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        b.object(s.class_id("Auto").unwrap()); // AssignedTo left null
        let st = b.finish(&s).unwrap();
        assert_eq!(st.statistics(&s).null_attrs, 1);
    }
}

impl State {
    /// Render the object graph as a Graphviz `digraph`: one node per object
    /// (labelled with its oid and class), a solid edge per object-valued
    /// attribute, and a dashed edge per set membership.
    pub fn to_dot(&self, schema: &Schema) -> String {
        let mut out = String::from("digraph state {\n  node [shape=box];\n");
        for o in self.oids() {
            out.push_str(&format!(
                "  \"{o}\" [label=\"{o}: {}\"];\n",
                schema.class_name(self.class_of(o))
            ));
        }
        for o in self.oids() {
            for &a in schema.effective_type(self.class_of(o)).keys() {
                match self.attr(o, a) {
                    Value::Null => {}
                    Value::Obj(t) => {
                        out.push_str(&format!(
                            "  \"{o}\" -> \"{t}\" [label=\"{}\"];\n",
                            schema.attr_name(a)
                        ));
                    }
                    Value::Set(ms) => {
                        for m in ms {
                            out.push_str(&format!(
                                "  \"{o}\" -> \"{m}\" [label=\"{}\", style=dashed];\n",
                                schema.attr_name(a)
                            ));
                        }
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod dot_tests {
    use crate::state::StateBuilder;
    use oocq_schema::samples;

    #[test]
    fn state_dot_has_nodes_and_both_edge_styles() {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        let a = b.object(s.class_id("Auto").unwrap());
        let d = b.object(s.class_id("Discount").unwrap());
        b.set_members(d, s.attr_id("VehRented").unwrap(), [a]);
        b.set_obj(a, s.attr_id("AssignedTo").unwrap(), d);
        let st = b.finish(&s).unwrap();
        let dot = st.to_dot(&s);
        assert!(dot.contains("\"o0\" [label=\"o0: Auto\"]"));
        assert!(dot.contains("\"o1\" -> \"o0\" [label=\"VehRented\", style=dashed]"));
        assert!(dot.contains("\"o0\" -> \"o1\" [label=\"AssignedTo\"]"));
    }
}

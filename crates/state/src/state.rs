//! Database states and legal-state validation.
//!
//! A *state* assigns to each object identifier a terminal class and values
//! for the attributes of that class. The **Terminal Class Partitioning
//! Assumption** (§2.1) is built in: every object belongs to exactly one
//! terminal class, and the extent of a non-terminal class is the disjoint
//! union of the extents of its terminal descendants.

use crate::error::StateError;
use crate::value::{Oid, Value};
use oocq_schema::{AttrId, AttrType, ClassId, Schema};
use std::collections::HashMap;

/// One object: its terminal class and its attribute components.
///
/// Attributes of the class that are absent from `attrs` hold the null value
/// `Λ`.
#[derive(Clone, Debug)]
pub struct Object {
    class: ClassId,
    attrs: HashMap<AttrId, Value>,
}

impl Object {
    /// The object's (terminal) class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The value of attribute `a` (null when unset).
    pub fn attr(&self, a: AttrId) -> &Value {
        self.attrs.get(&a).unwrap_or(&Value::Null)
    }
}

/// A validated database state.
#[derive(Clone, Debug)]
pub struct State {
    objects: Vec<Object>,
    /// Extent of each **class** (not just terminals), precomputed under the
    /// partitioning assumption; indexed by `ClassId::index()`.
    extents: Vec<Vec<Oid>>,
}

impl State {
    /// Number of objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Iterate over every oid.
    pub fn oids(&self) -> impl Iterator<Item = Oid> {
        (0..self.object_count()).map(Oid::from_index)
    }

    /// The terminal class of an object.
    pub fn class_of(&self, o: Oid) -> ClassId {
        self.objects[o.index()].class
    }

    /// The value of attribute `a` on object `o` (null when unset or when the
    /// object's class lacks the attribute).
    pub fn attr(&self, o: Oid, a: AttrId) -> &Value {
        self.objects[o.index()].attr(a)
    }

    /// The extent of any class: all objects whose terminal class is a
    /// terminal descendant of `c` (or `c` itself).
    pub fn extent(&self, c: ClassId) -> &[Oid] {
        &self.extents[c.index()]
    }

    /// Does object `o` belong to class `c` (directly or via inheritance)?
    pub fn is_member(&self, schema: &Schema, o: Oid, c: ClassId) -> bool {
        schema.is_subclass(self.class_of(o), c)
    }
}

/// Builder for [`State`]; validation happens in [`StateBuilder::finish`].
#[derive(Clone, Debug, Default)]
pub struct StateBuilder {
    objects: Vec<Object>,
}

impl StateBuilder {
    /// Start an empty state.
    pub fn new() -> StateBuilder {
        StateBuilder::default()
    }

    /// Create an object of the given class (must be terminal; checked at
    /// [`StateBuilder::finish`]). All attributes start null.
    pub fn object(&mut self, class: ClassId) -> Oid {
        let oid = Oid::from_index(self.objects.len());
        self.objects.push(Object {
            class,
            attrs: HashMap::new(),
        });
        oid
    }

    /// Set an attribute value on an object created earlier.
    pub fn set(&mut self, o: Oid, a: AttrId, v: Value) -> &mut Self {
        self.objects[o.index()].attrs.insert(a, v);
        self
    }

    /// Convenience: set an object-valued attribute.
    pub fn set_obj(&mut self, o: Oid, a: AttrId, target: Oid) -> &mut Self {
        self.set(o, a, Value::Obj(target))
    }

    /// Convenience: set a set-valued attribute.
    pub fn set_members(
        &mut self,
        o: Oid,
        a: AttrId,
        members: impl IntoIterator<Item = Oid>,
    ) -> &mut Self {
        self.set(o, a, Value::set(members))
    }

    /// Validate against the schema and freeze.
    ///
    /// A state is *legal* when every object's class is terminal, every set
    /// attribute is declared by the object's class with a matching kind
    /// (object vs. set), every referenced oid exists, and every referenced
    /// object's class is a terminal descendant of the attribute's declared
    /// class.
    pub fn finish(self, schema: &Schema) -> Result<State, StateError> {
        let n = self.objects.len();
        for (ix, obj) in self.objects.iter().enumerate() {
            let oid = Oid::from_index(ix);
            if !schema.is_terminal(obj.class) {
                return Err(StateError::NonTerminalClass {
                    oid,
                    class: schema.class_name(obj.class).to_owned(),
                });
            }
            for (&a, v) in &obj.attrs {
                let Some(decl) = schema.attr_type(obj.class, a) else {
                    return Err(StateError::UnknownAttribute {
                        oid,
                        class: schema.class_name(obj.class).to_owned(),
                        attr: schema.attr_name(a).to_owned(),
                    });
                };
                let check_target = |target: Oid| -> Result<(), StateError> {
                    if target.index() >= n {
                        return Err(StateError::DanglingOid { oid, target });
                    }
                    let tc = self.objects[target.index()].class;
                    if !schema.is_subclass(tc, decl.class()) {
                        return Err(StateError::ClassMismatch {
                            oid,
                            target,
                            found: schema.class_name(tc).to_owned(),
                            expected: schema.class_name(decl.class()).to_owned(),
                        });
                    }
                    Ok(())
                };
                match (decl, v) {
                    (_, Value::Null) => {}
                    (AttrType::Object(_), Value::Obj(t)) => check_target(*t)?,
                    (AttrType::SetOf(_), Value::Set(ms)) => {
                        for &m in ms {
                            check_target(m)?;
                        }
                    }
                    _ => {
                        return Err(StateError::KindMismatch {
                            oid,
                            attr: schema.attr_name(a).to_owned(),
                            declared_set: decl.is_set(),
                        })
                    }
                }
            }
        }

        // Precompute every class extent.
        let mut extents: Vec<Vec<Oid>> = vec![Vec::new(); schema.class_count()];
        for (ix, obj) in self.objects.iter().enumerate() {
            let oid = Oid::from_index(ix);
            for c in schema.classes() {
                if schema.is_subclass(obj.class, c) {
                    extents[c.index()].push(oid);
                }
            }
        }
        Ok(State {
            objects: self.objects,
            extents,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oocq_schema::samples;

    #[test]
    fn empty_state_is_legal() {
        let s = samples::vehicle_rental();
        let st = StateBuilder::new().finish(&s).unwrap();
        assert_eq!(st.object_count(), 0);
        assert!(st.extent(s.class_id("Vehicle").unwrap()).is_empty());
    }

    #[test]
    fn extents_respect_partitioning() {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        let a1 = b.object(s.class_id("Auto").unwrap());
        let t1 = b.object(s.class_id("Truck").unwrap());
        let _d = b.object(s.class_id("Discount").unwrap());
        let st = b.finish(&s).unwrap();
        assert_eq!(st.extent(s.class_id("Vehicle").unwrap()), &[a1, t1]);
        assert_eq!(st.extent(s.class_id("Auto").unwrap()), &[a1]);
        assert_eq!(st.extent(s.class_id("Client").unwrap()).len(), 1);
    }

    #[test]
    fn non_terminal_object_rejected() {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        b.object(s.class_id("Vehicle").unwrap());
        assert!(matches!(
            b.finish(&s),
            Err(StateError::NonTerminalClass { .. })
        ));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        let a = b.object(s.class_id("Auto").unwrap());
        // VehRented belongs to clients, not vehicles.
        b.set_members(a, s.attr_id("VehRented").unwrap(), [a]);
        assert!(matches!(
            b.finish(&s),
            Err(StateError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        let d = b.object(s.class_id("Discount").unwrap());
        let a = b.object(s.class_id("Auto").unwrap());
        // VehRented is set-valued; an object value is illegal.
        b.set_obj(d, s.attr_id("VehRented").unwrap(), a);
        assert!(matches!(b.finish(&s), Err(StateError::KindMismatch { .. })));
    }

    #[test]
    fn member_class_must_match_refined_type() {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        let d = b.object(s.class_id("Discount").unwrap());
        let t = b.object(s.class_id("Truck").unwrap());
        // Discount.VehRented : {Auto}; a Truck member is illegal.
        b.set_members(d, s.attr_id("VehRented").unwrap(), [t]);
        assert!(matches!(
            b.finish(&s),
            Err(StateError::ClassMismatch { .. })
        ));
        // ... but legal on a Regular client, whose type is {Vehicle}.
        let mut b = StateBuilder::new();
        let r = b.object(s.class_id("Regular").unwrap());
        let t = b.object(s.class_id("Truck").unwrap());
        b.set_members(r, s.attr_id("VehRented").unwrap(), [t]);
        assert!(b.finish(&s).is_ok());
    }

    #[test]
    fn dangling_oid_rejected() {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        let d = b.object(s.class_id("Discount").unwrap());
        b.set_members(d, s.attr_id("VehRented").unwrap(), [Oid::from_index(99)]);
        assert!(matches!(b.finish(&s), Err(StateError::DanglingOid { .. })));
    }

    #[test]
    fn unset_attribute_reads_null() {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        let d = b.object(s.class_id("Discount").unwrap());
        let st = b.finish(&s).unwrap();
        assert!(st.attr(d, s.attr_id("VehRented").unwrap()).is_null());
    }

    #[test]
    fn membership_via_inheritance() {
        let s = samples::vehicle_rental();
        let mut b = StateBuilder::new();
        let a = b.object(s.class_id("Auto").unwrap());
        let st = b.finish(&s).unwrap();
        assert!(st.is_member(&s, a, s.class_id("Vehicle").unwrap()));
        assert!(st.is_member(&s, a, s.class_id("Auto").unwrap()));
        assert!(!st.is_member(&s, a, s.class_id("Truck").unwrap()));
    }
}

//! Chandra–Merlin containment: `Q₁ ⊆ Q₂` iff there is a homomorphism from
//! `Q₂` to `Q₁` mapping head to head.

use crate::query::{PredId, RelAtom, RelQuery, RelVar};
use std::collections::{HashMap, HashSet};

/// Find a homomorphism from `source` to `target`: a variable mapping under
/// which every body atom of `source` becomes a body atom of `target` and the
/// head maps pointwise onto `target`'s head.
///
/// Predicates are matched **by name** so queries built by different builders
/// compare correctly.
pub fn homomorphism(source: &RelQuery, target: &RelQuery) -> Option<Vec<RelVar>> {
    if source.head().len() != target.head().len() {
        return None;
    }
    // Align predicate ids by name.
    let mut pred_map: HashMap<PredId, Option<PredId>> = HashMap::new();
    for a in source.atoms() {
        pred_map.entry(a.pred).or_insert_with(|| {
            (0..target.pred_count() as u32)
                .map(PredId)
                .find(|&p| target.pred_name(p) == source.pred_name(a.pred))
        });
    }
    // Target atom index: by (pred, arity).
    let mut by_pred: HashMap<(PredId, usize), Vec<&RelAtom>> = HashMap::new();
    for a in target.atoms() {
        by_pred.entry((a.pred, a.args.len())).or_default().push(a);
    }

    let n = source.var_count();
    let mut map: Vec<Option<RelVar>> = vec![None; n];
    // Head must map pointwise.
    for (sv, tv) in source.head().iter().zip(target.head()) {
        match map[sv.index()] {
            None => map[sv.index()] = Some(*tv),
            Some(prev) if prev == *tv => {}
            Some(_) => return None,
        }
    }

    // Order atoms to bind variables eagerly (simple static order).
    let atoms: Vec<&RelAtom> = source.atoms().iter().collect();
    fn recurse(
        atoms: &[&RelAtom],
        ix: usize,
        map: &mut [Option<RelVar>],
        pred_map: &HashMap<PredId, Option<PredId>>,
        by_pred: &HashMap<(PredId, usize), Vec<&RelAtom>>,
    ) -> bool {
        let Some(atom) = atoms.get(ix) else {
            return true;
        };
        let Some(Some(tp)) = pred_map.get(&atom.pred) else {
            return false; // predicate absent from target
        };
        let Some(candidates) = by_pred.get(&(*tp, atom.args.len())) else {
            return false;
        };
        for cand in candidates {
            // Try to unify argument lists.
            let mut touched: Vec<usize> = Vec::new();
            let mut ok = true;
            for (sv, tv) in atom.args.iter().zip(&cand.args) {
                match map[sv.index()] {
                    None => {
                        map[sv.index()] = Some(*tv);
                        touched.push(sv.index());
                    }
                    Some(prev) if prev == *tv => {}
                    Some(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && recurse(atoms, ix + 1, map, pred_map, by_pred) {
                return true;
            }
            for t in touched {
                map[t] = None;
            }
        }
        false
    }
    if !recurse(&atoms, 0, &mut map, &pred_map, &by_pred) {
        return None;
    }
    // Unconstrained variables (not in head or body — degenerate) map to the
    // first target variable, or themselves if the target is empty.
    let fallback = target.vars().next().unwrap_or(RelVar(0));
    Some(map.into_iter().map(|m| m.unwrap_or(fallback)).collect())
}

/// Chandra–Merlin: `q1 ⊆ q2` iff a homomorphism `q2 → q1` exists.
pub fn contains(q1: &RelQuery, q2: &RelQuery) -> bool {
    homomorphism(q2, q1).is_some()
}

/// `q1 ≡ q2` (homomorphic equivalence).
pub fn equivalent(q1: &RelQuery, q2: &RelQuery) -> bool {
    contains(q1, q2) && contains(q2, q1)
}

/// Compute the core of a conjunctive query: repeatedly fold through a proper
/// (non-surjective) endomorphism that fixes the head, until none exists. The
/// result is the unique (up to isomorphism) minimal equivalent query.
pub fn minimize(q: &RelQuery) -> RelQuery {
    let mut cur = q.clone();
    'outer: loop {
        for drop in cur.vars() {
            if cur.head().contains(&drop) {
                continue; // head variables must stay fixed
            }
            if let Some(map) = endomorphism_avoiding(&cur, drop) {
                cur = cur.apply_mapping(&map);
                continue 'outer;
            }
        }
        return cur;
    }
}

/// Is the query its own core?
pub fn is_minimal(q: &RelQuery) -> bool {
    q.vars()
        .filter(|v| !q.head().contains(v))
        .all(|drop| endomorphism_avoiding(q, drop).is_none())
}

/// A homomorphism `q → q` fixing the head pointwise and avoiding `drop` in
/// its image.
fn endomorphism_avoiding(q: &RelQuery, drop: RelVar) -> Option<Vec<RelVar>> {
    let mut by_pred: HashMap<(PredId, usize), Vec<&RelAtom>> = HashMap::new();
    for a in q.atoms() {
        by_pred.entry((a.pred, a.args.len())).or_default().push(a);
    }
    let n = q.var_count();
    let mut map: Vec<Option<RelVar>> = vec![None; n];
    for &h in q.head() {
        if h == drop {
            return None;
        }
        map[h.index()] = Some(h);
    }
    let atoms: Vec<&RelAtom> = q.atoms().iter().collect();
    fn recurse(
        atoms: &[&RelAtom],
        ix: usize,
        drop: RelVar,
        map: &mut [Option<RelVar>],
        by_pred: &HashMap<(PredId, usize), Vec<&RelAtom>>,
    ) -> bool {
        let Some(atom) = atoms.get(ix) else {
            return true;
        };
        let candidates = &by_pred[&(atom.pred, atom.args.len())];
        for cand in candidates {
            if cand.args.contains(&drop) {
                continue;
            }
            let mut touched: Vec<usize> = Vec::new();
            let mut ok = true;
            for (sv, tv) in atom.args.iter().zip(&cand.args) {
                match map[sv.index()] {
                    None => {
                        map[sv.index()] = Some(*tv);
                        touched.push(sv.index());
                    }
                    Some(prev) if prev == *tv => {}
                    Some(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok && recurse(atoms, ix + 1, drop, map, by_pred) {
                return true;
            }
            for t in touched {
                map[t] = None;
            }
        }
        false
    }
    if !recurse(&atoms, 0, drop, &mut map, &by_pred) {
        return None;
    }
    // Variables untouched by head or atoms map to themselves; they are
    // compacted away by `apply_mapping`, so the fold always removes `drop`
    // (which is neither in the head nor, post-search, in any atom image).
    Some(
        map.into_iter()
            .enumerate()
            .map(|(ix, m)| m.unwrap_or(RelVar(ix as u32)))
            .collect(),
    )
}

/// A simple relational database: a set of tuples per predicate name.
pub type RelDb = HashMap<String, HashSet<Vec<u32>>>;

/// Evaluate a conjunctive query over a database (naive backtracking join);
/// returns the set of head-variable bindings.
pub fn answer(db: &RelDb, q: &RelQuery) -> HashSet<Vec<u32>> {
    let mut out = HashSet::new();
    let n = q.var_count();
    let mut binding: Vec<Option<u32>> = vec![None; n];
    let atoms: Vec<&RelAtom> = q.atoms().iter().collect();
    fn recurse(
        db: &RelDb,
        q: &RelQuery,
        atoms: &[&RelAtom],
        ix: usize,
        binding: &mut [Option<u32>],
        out: &mut HashSet<Vec<u32>>,
    ) {
        let Some(atom) = atoms.get(ix) else {
            if q.head().iter().all(|h| binding[h.index()].is_some()) {
                out.insert(
                    q.head()
                        .iter()
                        .map(|h| binding[h.index()].unwrap())
                        .collect(),
                );
            }
            return;
        };
        let Some(tuples) = db.get(q.pred_name(atom.pred)) else {
            return;
        };
        for t in tuples {
            if t.len() != atom.args.len() {
                continue;
            }
            let mut touched: Vec<usize> = Vec::new();
            let mut ok = true;
            for (v, &c) in atom.args.iter().zip(t) {
                match binding[v.index()] {
                    None => {
                        binding[v.index()] = Some(c);
                        touched.push(v.index());
                    }
                    Some(prev) if prev == c => {}
                    Some(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                recurse(db, q, atoms, ix + 1, binding, out);
            }
            for u in touched {
                binding[u] = None;
            }
        }
    }
    recurse(db, q, &atoms, 0, &mut binding, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RelQueryBuilder;

    /// A length-`n` path query: `ans(x0) <- e(x0,x1), …, e(x(n-1),xn)`.
    fn path(n: usize) -> RelQuery {
        let mut b = RelQueryBuilder::new();
        let e = b.pred("e");
        let x0 = b.var("x0");
        b.head_var(x0);
        for i in 0..n {
            let u = b.var(&format!("x{i}"));
            let v = b.var(&format!("x{}", i + 1));
            b.atom(e, [u, v]);
        }
        b.build()
    }

    #[test]
    fn longer_paths_are_contained_in_shorter() {
        // path(3) ⊆ path(2): hom from path(2) into path(3).
        assert!(contains(&path(3), &path(2)));
        assert!(!contains(&path(2), &path(3)));
    }

    #[test]
    fn path_with_loop_minimizes() {
        // ans(x) <- e(x,y), e(y,y): core is itself (no folding possible
        // since e(x,y) can't map to e(y,y) while fixing head)? Actually
        // x ↦ y is forbidden (head), y ↦ y fine: already minimal.
        let mut b = RelQueryBuilder::new();
        let e = b.pred("e");
        let x = b.var("x");
        let y = b.var("y");
        b.head_var(x);
        b.atom(e, [x, y]).atom(e, [y, y]);
        let q = b.build();
        assert!(is_minimal(&q));

        // ans(x) <- e(x,y), e(x,z), e(z,z): z self-loop; y folds onto z.
        let mut b = RelQueryBuilder::new();
        let e = b.pred("e");
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.head_var(x);
        b.atom(e, [x, y]).atom(e, [x, z]).atom(e, [z, z]);
        let q = b.build();
        assert!(!is_minimal(&q));
        let m = minimize(&q);
        assert_eq!(m.var_count(), 2);
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn triangle_query_is_its_own_core() {
        let mut b = RelQueryBuilder::new();
        let e = b.pred("e");
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.head_var(x);
        b.atom(e, [x, y]).atom(e, [y, z]).atom(e, [z, x]);
        let q = b.build();
        assert!(is_minimal(&q));
        assert_eq!(minimize(&q).var_count(), 3);
    }

    #[test]
    fn duplicate_atoms_collapse() {
        let mut b = RelQueryBuilder::new();
        let e = b.pred("e");
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.head_var(x);
        b.atom(e, [x, y]).atom(e, [x, z]);
        let q = b.build();
        let m = minimize(&q);
        assert_eq!(m.var_count(), 2);
        assert_eq!(m.atoms().len(), 1);
        assert!(equivalent(&q, &m));
    }

    #[test]
    fn cross_builder_pred_names_align() {
        let mut b1 = RelQueryBuilder::new();
        let p = b1.pred("p");
        let e = b1.pred("e");
        let x = b1.var("x");
        b1.head_var(x);
        b1.atom(p, [x]).atom(e, [x, x]);
        let q1 = b1.build();

        let mut b2 = RelQueryBuilder::new();
        // Interned in the opposite order.
        let e2 = b2.pred("e");
        let p2 = b2.pred("p");
        let x2 = b2.var("x");
        b2.head_var(x2);
        b2.atom(p2, [x2]).atom(e2, [x2, x2]);
        let q2 = b2.build();
        assert!(equivalent(&q1, &q2));
    }

    #[test]
    fn evaluation_and_containment_agree() {
        // q1 ⊆ q2 checked on a concrete database.
        let q1 = path(3);
        let q2 = path(2);
        let mut db: RelDb = RelDb::new();
        db.insert(
            "e".into(),
            [vec![1, 2], vec![2, 3], vec![3, 4], vec![7, 7]]
                .into_iter()
                .collect(),
        );
        let a1 = answer(&db, &q1);
        let a2 = answer(&db, &q2);
        assert!(a1.is_subset(&a2));
        assert!(a1.contains(&vec![1]));
        assert!(a2.contains(&vec![2]) && !a1.contains(&vec![3]));
        assert!(a1.contains(&vec![7]));
    }

    #[test]
    fn head_arity_mismatch_never_contains() {
        let mut b = RelQueryBuilder::new();
        let e = b.pred("e");
        let x = b.var("x");
        let y = b.var("y");
        b.head_var(x).head_var(y);
        b.atom(e, [x, y]);
        let two = b.build();
        assert!(!contains(&two, &path(1)));
    }
}

//! Encoding terminal positive OODB conjunctive queries as relational
//! conjunctive queries.
//!
//! The encoding deliberately **forgets the type system**: classes become
//! unary predicates, object-valued attribute equalities become binary
//! `A_obj` atoms, and memberships become binary `A_mem` atoms. Equated
//! variables are unified before encoding. The benchmarks use this to show
//! what the classical Chandra–Merlin machinery can and cannot do on the
//! paper's queries: containment of a single terminal positive query agrees,
//! but the typing-driven pruning (unsatisfiable expansion branches, Example
//! 4.1) is invisible to the relational encoding.

use crate::query::{RelQuery, RelQueryBuilder};
use oocq_query::{Atom, EqualityGraph, Query, Term};
use oocq_schema::Schema;

/// Encode a terminal **positive** OODB query relationally.
///
/// Panics if the query contains negative atoms (callers hold positivity as
/// an invariant; this is a harness tool, not a public API surface).
pub fn encode_positive(schema: &Schema, q: &Query) -> RelQuery {
    let graph = EqualityGraph::build(q);
    let mut b = RelQueryBuilder::new();
    // One relational variable per equivalence class of OODB *variables*;
    // attribute terms are represented through their class representative
    // when equated to a variable, or through a fresh skolem variable.
    let rel_of_term = |t: Term, b: &mut RelQueryBuilder| {
        if let Some(rep) = graph.representative_var(t) {
            b.var(q.var_name(rep))
        } else {
            // Unequated attribute term: name it canonically.
            match t {
                Term::Var(v) => b.var(q.var_name(v)),
                Term::Attr(v, a) => {
                    let name = format!("{}__{}", q.var_name(v), schema.attr_name(a).to_owned());
                    b.var(&name)
                }
            }
        }
    };
    let free = rel_of_term(Term::Var(q.free_var()), &mut b);
    b.head_var(free);
    for atom in q.atoms() {
        match atom {
            Atom::Range(v, cs) => {
                let rv = rel_of_term(Term::Var(*v), &mut b);
                for c in cs {
                    let p = b.pred(&format!("class_{}", schema.class_name(*c)));
                    b.atom(p, [rv]);
                }
            }
            Atom::Eq(s, t) => {
                // Variable-variable equalities are absorbed by the class
                // representative; attribute equalities become A_obj edges.
                for (side, other) in [(*s, *t), (*t, *s)] {
                    if let Term::Attr(v, a) = side {
                        let base = rel_of_term(Term::Var(v), &mut b);
                        let val = rel_of_term(other, &mut b);
                        let p = b.pred(&format!("{}_obj", schema.attr_name(a)));
                        b.atom(p, [base, val]);
                    }
                }
            }
            Atom::Member(x, y, a) => {
                let mx = rel_of_term(Term::Var(*x), &mut b);
                let my = rel_of_term(Term::Var(*y), &mut b);
                let p = b.pred(&format!("{}_mem", schema.attr_name(*a)));
                b.atom(p, [my, mx]);
            }
            negative => panic!("encode_positive given a negative atom: {negative:?}"),
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contain;
    use oocq_query::QueryBuilder;
    use oocq_schema::samples;

    fn discount_query(s: &Schema, cls: &str) -> Query {
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [s.class_id(cls).unwrap()]);
        b.range(y, [s.class_id("Discount").unwrap()]);
        b.member(x, y, s.attr_id("VehRented").unwrap());
        b.build()
    }

    #[test]
    fn encoding_shape() {
        let s = samples::vehicle_rental();
        let rq = encode_positive(&s, &discount_query(&s, "Auto"));
        let text = rq.to_string();
        assert!(text.starts_with("ans(x)"));
        assert!(text.contains("class_Auto(x)"));
        assert!(text.contains("class_Discount(y)"));
        assert!(text.contains("VehRented_mem(y, x)"));
    }

    #[test]
    fn equated_variables_unify() {
        let s = samples::single_class();
        let c = s.class_id("C").unwrap();
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        let y = b.var("y");
        b.range(x, [c]).range(y, [c]).eq_vars(x, y);
        let rq = encode_positive(&s, &b.build());
        // x and y collapse into one relational variable.
        assert_eq!(rq.var_count(), 1);
    }

    #[test]
    fn relational_containment_agrees_on_same_class_queries() {
        // Two terminal positive queries over identical classes: relational
        // containment matches the OODB decision (no typing involved).
        let s = samples::vehicle_rental();
        let q_auto = discount_query(&s, "Auto");
        let mut b = QueryBuilder::new("x");
        let x = b.free();
        b.range(x, [s.class_id("Auto").unwrap()]);
        let q_loose = b.build();
        let r1 = encode_positive(&s, &q_auto);
        let r2 = encode_positive(&s, &q_loose);
        assert!(contain::contains(&r1, &r2));
        assert!(!contain::contains(&r2, &r1));
        assert_eq!(
            contain::contains(&r1, &r2),
            oocq_core::contains_terminal(&s, &q_auto, &q_loose).unwrap()
        );
    }

    #[test]
    fn relational_encoding_misses_typing_pruning() {
        // The Truck variant is unsatisfiable in the OODB (Discount rents
        // Autos only) hence contained in everything; the untyped relational
        // encoding cannot see that.
        let s = samples::vehicle_rental();
        let q_truck = discount_query(&s, "Truck");
        let q_auto = discount_query(&s, "Auto");
        assert!(oocq_core::contains_terminal(&s, &q_truck, &q_auto).unwrap());
        let r_truck = encode_positive(&s, &q_truck);
        let r_auto = encode_positive(&s, &q_auto);
        assert!(!contain::contains(&r_truck, &r_auto));
    }
}

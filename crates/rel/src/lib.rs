//! # oocq-rel
//!
//! The classical relational conjunctive-query baseline (Chandra–Merlin
//! 1977) that Chan's OODB theory generalizes: homomorphism-based
//! containment, core minimization, naive evaluation, and an encoder from
//! terminal positive OODB queries into untyped relational queries. The
//! benchmark harness uses this crate to compare the relational machinery
//! against the typing-aware algorithms of `oocq-core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod contain;
mod encode;
mod query;
mod union;

pub use contain::{answer, contains, equivalent, homomorphism, is_minimal, minimize, RelDb};
pub use encode::encode_positive;
pub use query::{PredId, RelAtom, RelQuery, RelQueryBuilder, RelVar};
pub use union::{
    memberwise_unique_equivalent, minimize_union, nonredundant, union_contains, union_equivalent,
    RelUnion,
};

//! Unions of relational conjunctive queries (Sagiv–Yannakakis 1980).
//!
//! The paper's §4 minimization technique is modeled on Sagiv–Yannakakis's
//! treatment of unions of relational expressions: containment of unions of
//! conjunctive queries is pairwise (`M ⊆ N` iff every `Qᵢ ⊆ some Pⱼ`), the
//! nonredundant form is unique up to per-member equivalence, and the
//! minimal form minimizes each member's core. This module provides that
//! baseline for comparison with the OODB generalization.

use crate::contain::{contains, equivalent, minimize};
use crate::query::RelQuery;

/// A union of relational conjunctive queries. The empty union is the
/// unsatisfiable query.
#[derive(Clone, Debug, Default)]
pub struct RelUnion {
    members: Vec<RelQuery>,
}

impl RelUnion {
    /// Build from members.
    pub fn new(members: Vec<RelQuery>) -> RelUnion {
        RelUnion { members }
    }

    /// The member queries.
    pub fn members(&self) -> &[RelQuery] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Is the union empty?
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Sagiv–Yannakakis: `m ⊆ n` iff each member of `m` is contained in some
/// member of `n`.
pub fn union_contains(m: &RelUnion, n: &RelUnion) -> bool {
    m.members
        .iter()
        .all(|q| n.members.iter().any(|p| contains(q, p)))
}

/// Union equivalence (both containments).
pub fn union_equivalent(m: &RelUnion, n: &RelUnion) -> bool {
    union_contains(m, n) && union_contains(n, m)
}

/// Remove redundant members: any `Qᵢ` contained in a retained `Qⱼ` (`j≠i`)
/// is dropped, keeping the first of each equivalence group.
pub fn nonredundant(u: &RelUnion) -> RelUnion {
    let n = u.members.len();
    let mut dropped = vec![false; n];
    for i in 0..n {
        if dropped[i] {
            continue;
        }
        for j in 0..n {
            if i == j || dropped[j] || !contains(&u.members[i], &u.members[j]) {
                continue;
            }
            if contains(&u.members[j], &u.members[i]) {
                if j < i {
                    dropped[i] = true;
                    break;
                }
            } else {
                dropped[i] = true;
                break;
            }
        }
    }
    RelUnion {
        members: u
            .members
            .iter()
            .enumerate()
            .filter(|(i, _)| !dropped[*i])
            .map(|(_, q)| q.clone())
            .collect(),
    }
}

/// The Sagiv–Yannakakis minimal form: nonredundant union of cores.
pub fn minimize_union(u: &RelUnion) -> RelUnion {
    let nr = nonredundant(u);
    RelUnion {
        members: nr.members.iter().map(minimize).collect(),
    }
}

/// Sanity predicate used by tests: two unions are member-wise equivalent
/// with a unique partner each (the Sagiv–Yannakakis uniqueness property,
/// mirrored by the paper's Theorem 4.2).
pub fn memberwise_unique_equivalent(m: &RelUnion, n: &RelUnion) -> bool {
    if m.len() != n.len() {
        return false;
    }
    m.members
        .iter()
        .all(|q| n.members.iter().filter(|p| equivalent(q, p)).count() == 1)
        && n.members
            .iter()
            .all(|p| m.members.iter().filter(|q| equivalent(q, p)).count() == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RelQueryBuilder;

    fn path(n: usize) -> RelQuery {
        let mut b = RelQueryBuilder::new();
        let e = b.pred("e");
        let x0 = b.var("x0");
        b.head_var(x0);
        for i in 0..n {
            let u = b.var(&format!("x{i}"));
            let v = b.var(&format!("x{}", i + 1));
            b.atom(e, [u, v]);
        }
        b.build()
    }

    #[test]
    fn union_containment_is_pairwise() {
        let m = RelUnion::new(vec![path(3), path(4)]);
        let n = RelUnion::new(vec![path(2)]);
        // Longer paths are contained in shorter ones.
        assert!(union_contains(&m, &n));
        assert!(!union_contains(&n, &m));
    }

    #[test]
    fn nonredundant_drops_contained_members() {
        let u = RelUnion::new(vec![path(4), path(2), path(3)]);
        let nr = nonredundant(&u);
        // path(4) ⊆ path(2) and path(3) ⊆ path(2): only path(2) survives.
        assert_eq!(nr.len(), 1);
        assert_eq!(nr.members()[0].atoms().len(), 2);
        assert!(union_equivalent(&u, &nr));
    }

    #[test]
    fn equivalent_duplicates_keep_first() {
        let u = RelUnion::new(vec![path(2), path(2)]);
        assert_eq!(nonredundant(&u).len(), 1);
    }

    #[test]
    fn minimize_union_computes_cores() {
        // A path query with a duplicated (renamed) tail folds in the core.
        let mut b = RelQueryBuilder::new();
        let e = b.pred("e");
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.head_var(x);
        b.atom(e, [x, y]).atom(e, [x, z]);
        let padded = b.build();
        let u = RelUnion::new(vec![padded]);
        let m = minimize_union(&u);
        assert_eq!(m.members()[0].var_count(), 2);
        assert!(union_equivalent(&u, &m));
    }

    #[test]
    fn uniqueness_of_nonredundant_forms() {
        let fwd = RelUnion::new(vec![path(1), path(5), path(3)]);
        let rev = RelUnion::new(vec![path(3), path(5), path(1)]);
        let a = minimize_union(&fwd);
        let b = minimize_union(&rev);
        assert!(memberwise_unique_equivalent(&a, &b));
    }

    #[test]
    fn empty_union_is_bottom() {
        let empty = RelUnion::default();
        let m = RelUnion::new(vec![path(1)]);
        assert!(union_contains(&empty, &m));
        assert!(!union_contains(&m, &empty));
        assert!(empty.is_empty());
    }
}

//! Classical relational conjunctive queries (Chandra–Merlin 1977).
//!
//! The baseline the paper generalizes: queries of the form
//! `ans(x̄) ← p₁(ū₁), …, pₖ(ūₖ)` over uninterpreted relation symbols, with
//! no class hierarchy, no typing, and no negation.

use std::collections::HashMap;
use std::fmt;

/// A variable of a relational query (dense index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelVar(pub u32);

impl RelVar {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A relation symbol (interned per query set via [`RelQueryBuilder`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PredId(pub u32);

/// One body atom `p(v₁, …, vₙ)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RelAtom {
    /// The relation symbol.
    pub pred: PredId,
    /// The argument variables.
    pub args: Vec<RelVar>,
}

/// A relational conjunctive query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelQuery {
    pred_names: Vec<String>,
    var_names: Vec<String>,
    head: Vec<RelVar>,
    atoms: Vec<RelAtom>,
}

impl RelQuery {
    /// The distinguished (head) variables.
    pub fn head(&self) -> &[RelVar] {
        &self.head
    }

    /// The body atoms.
    pub fn atoms(&self) -> &[RelAtom] {
        &self.atoms
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Iterate over variables.
    pub fn vars(&self) -> impl Iterator<Item = RelVar> {
        (0..self.var_names.len() as u32).map(RelVar)
    }

    /// A variable's name.
    pub fn var_name(&self, v: RelVar) -> &str {
        &self.var_names[v.index()]
    }

    /// A predicate's name.
    pub fn pred_name(&self, p: PredId) -> &str {
        &self.pred_names[p.0 as usize]
    }

    /// Number of distinct predicates mentioned.
    pub fn pred_count(&self) -> usize {
        self.pred_names.len()
    }

    /// Apply a variable mapping, dedup atoms, and drop unused variables.
    pub fn apply_mapping(&self, map: &[RelVar]) -> RelQuery {
        debug_assert_eq!(map.len(), self.var_count());
        let mapped_atoms: Vec<RelAtom> = self
            .atoms
            .iter()
            .map(|a| RelAtom {
                pred: a.pred,
                args: a.args.iter().map(|v| map[v.index()]).collect(),
            })
            .collect();
        let mapped_head: Vec<RelVar> = self.head.iter().map(|v| map[v.index()]).collect();
        let mut used = vec![false; self.var_count()];
        for v in &mapped_head {
            used[v.index()] = true;
        }
        for a in &mapped_atoms {
            for v in &a.args {
                used[v.index()] = true;
            }
        }
        let mut remap = vec![RelVar(0); self.var_count()];
        let mut names = Vec::new();
        for (ix, &u) in used.iter().enumerate() {
            if u {
                remap[ix] = RelVar(names.len() as u32);
                names.push(self.var_names[ix].clone());
            }
        }
        let mut atoms: Vec<RelAtom> = mapped_atoms
            .into_iter()
            .map(|a| RelAtom {
                pred: a.pred,
                args: a.args.into_iter().map(|v| remap[v.index()]).collect(),
            })
            .collect();
        atoms.sort();
        atoms.dedup();
        RelQuery {
            pred_names: self.pred_names.clone(),
            var_names: names,
            head: mapped_head.into_iter().map(|v| remap[v.index()]).collect(),
            atoms,
        }
    }
}

impl fmt::Display for RelQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ans(")?;
        for (i, v) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.var_name(*v))?;
        }
        write!(f, ") <- ")?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", self.pred_name(a.pred))?;
            for (j, v) in a.args.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.var_name(*v))?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Builder for [`RelQuery`].
#[derive(Default, Clone, Debug)]
pub struct RelQueryBuilder {
    pred_names: Vec<String>,
    pred_by_name: HashMap<String, PredId>,
    var_names: Vec<String>,
    var_by_name: HashMap<String, RelVar>,
    head: Vec<RelVar>,
    atoms: Vec<RelAtom>,
}

impl RelQueryBuilder {
    /// Start an empty builder.
    pub fn new() -> RelQueryBuilder {
        RelQueryBuilder::default()
    }

    /// Intern a variable by name (idempotent).
    pub fn var(&mut self, name: &str) -> RelVar {
        if let Some(&v) = self.var_by_name.get(name) {
            return v;
        }
        let v = RelVar(self.var_names.len() as u32);
        self.var_names.push(name.to_owned());
        self.var_by_name.insert(name.to_owned(), v);
        v
    }

    /// Intern a predicate by name (idempotent).
    pub fn pred(&mut self, name: &str) -> PredId {
        if let Some(&p) = self.pred_by_name.get(name) {
            return p;
        }
        let p = PredId(self.pred_names.len() as u32);
        self.pred_names.push(name.to_owned());
        self.pred_by_name.insert(name.to_owned(), p);
        p
    }

    /// Append a head variable.
    pub fn head_var(&mut self, v: RelVar) -> &mut Self {
        self.head.push(v);
        self
    }

    /// Append a body atom.
    pub fn atom(&mut self, pred: PredId, args: impl IntoIterator<Item = RelVar>) -> &mut Self {
        self.atoms.push(RelAtom {
            pred,
            args: args.into_iter().collect(),
        });
        self
    }

    /// Finish building.
    pub fn build(self) -> RelQuery {
        RelQuery {
            pred_names: self.pred_names,
            var_names: self.var_names,
            head: self.head,
            atoms: self.atoms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_interns_names() {
        let mut b = RelQueryBuilder::new();
        let x = b.var("x");
        let x2 = b.var("x");
        assert_eq!(x, x2);
        let p = b.pred("edge");
        assert_eq!(p, b.pred("edge"));
        b.head_var(x);
        b.atom(p, [x, x]);
        let q = b.build();
        assert_eq!(q.var_count(), 1);
        assert_eq!(q.to_string(), "ans(x) <- edge(x, x)");
    }

    #[test]
    fn apply_mapping_folds_and_compacts() {
        let mut b = RelQueryBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        let e = b.pred("e");
        b.head_var(x);
        b.atom(e, [x, y]).atom(e, [x, z]);
        let q = b.build();
        let folded = q.apply_mapping(&[x, y, y]);
        assert_eq!(folded.var_count(), 2);
        assert_eq!(folded.atoms().len(), 1);
    }
}
